package experiments

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/flow"
	"repro/internal/xhwif"
)

// E7 is an ablation of the design choice DESIGN.md calls out: JPG writes
// whole-column partial bitstreams (the device's write granularity, and
// independent of the base design's exact state), whereas a diff-minimal
// partial (JBitsDiff-style) carries only changed frames but must know the
// precise base configuration. The experiment quantifies the size/time gap
// for one module swap.
func E7(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	part, err := device.ByName(cfg.Part)
	if err != nil {
		return nil, err
	}
	base, err := flow.BuildBase(part, []designs.Instance{
		{Prefix: "u1/", Gen: designs.Counter{Bits: 6}},
		{Prefix: "u2/", Gen: designs.SBoxBank{N: 6, Seed: 3}},
	}, flow.Options{Seed: cfg.Seed, Effort: cfg.Effort})
	if err != nil {
		return nil, err
	}
	variant, err := flow.BuildVariant(base, "u1/", designs.LFSR{Bits: 6, Taps: []int{5, 2}}, flow.Options{Seed: cfg.Seed + 1, Effort: cfg.Effort})
	if err != nil {
		return nil, err
	}
	proj, err := core.NewProject(base.Bitstream)
	if err != nil {
		return nil, err
	}
	before := proj.Base.Clone()
	m, err := proj.AddModule("v", variant.XDL, variant.UCF)
	if err != nil {
		return nil, err
	}
	res, err := proj.GeneratePartial(m, core.GenerateOptions{Strict: true, WriteBack: true})
	if err != nil {
		return nil, err
	}
	diffFARs, err := proj.Base.Diff(before)
	if err != nil {
		return nil, err
	}
	minimal, err := bitstream.WritePartialForFARs(proj.Base, diffFARs)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "E7",
		Title: fmt.Sprintf("ablation: column-region vs diff-minimal partial bitstreams (%s)", part.Name),
		Claim: "whole-column partials are larger than diff-minimal ones but independent of " +
			"the base state and aligned with the device's frame-per-column granularity",
		Columns: []string{"granularity", "frames", "bytes", "download @50MHz", "needs exact base state"},
	}
	board := xhwif.NewBoard(part)
	if _, err := board.Download(base.Bitstream); err != nil {
		return nil, err
	}
	dsCol, err := board.Download(res.Bitstream)
	if err != nil {
		return nil, err
	}
	dsMin, err := board.Download(minimal)
	if err != nil {
		return nil, err
	}
	t.AddRow("column region (JPG)", len(res.FARs), len(res.Bitstream), fmtDur(dsCol.ModelTime), "no")
	t.AddRow("diff-minimal", len(diffFARs), len(minimal), fmtDur(dsMin.ModelTime), "yes")

	// Third point: column region with MFWR compression (same coverage and
	// base independence, duplicate frames sent by reference).
	projC, err := core.NewProject(base.Bitstream)
	if err != nil {
		return nil, err
	}
	mC, err := projC.AddModule("vc", variant.XDL, variant.UCF)
	if err != nil {
		return nil, err
	}
	resC, err := projC.GeneratePartial(mC, core.GenerateOptions{Strict: true, Compress: true})
	if err != nil {
		return nil, err
	}
	dsC, err := board.Download(resC.Bitstream)
	if err != nil {
		return nil, err
	}
	t.AddRow("column region + MFWR", len(resC.FARs), len(resC.Bitstream), fmtDur(dsC.ModelTime), "no")

	// Both must land the device in the same state.
	if !board.Readback().Equal(proj.Base) {
		t.Note("VERDICT: FAIL (granularities disagree on final device state)")
		return t, nil
	}
	t.Note("size ratio column/minimal = %.1fx; both reach the identical device state",
		float64(len(res.Bitstream))/float64(len(minimal)))
	t.Note("VERDICT: PASS")
	return t, nil
}
