package experiments

import (
	"context"
	"fmt"
	"regexp"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// The parallel execution layer's contract is that worker count changes only
// wall-clock, never results: every CAD run carries its own seed, and tables
// are collected by index, not completion order. These tests pin that down by
// running experiments serially (Workers=1) and wide (Workers>=4) and
// comparing the tables byte for byte — after masking the cells and notes
// that report *measured wall-clock*, which differ between any two runs,
// serial or not. Everything the paper's claims rest on (run counts, LE
// counts, bitstream bytes, byte ratios, verdicts on those) must be
// identical.

var speedupRE = regexp.MustCompile(`^\d+(\.\d+)?x$`)

func isTimeDerived(cell string) bool {
	if _, err := time.ParseDuration(cell); err == nil {
		return true
	}
	return speedupRE.MatchString(cell)
}

var durationTokenRE = regexp.MustCompile(`\b\d+(\.\d+)?(ns|µs|us|ms|s|m|h)\b`)

func timeSensitiveNote(note string) bool {
	lower := strings.ToLower(note)
	return strings.Contains(lower, "time") ||
		strings.Contains(lower, "faster") ||
		strings.Contains(lower, "speedup") ||
		durationTokenRE.MatchString(note)
}

// maskTimings renders a table with wall-clock-valued cells replaced by a
// placeholder and time-derived notes dropped.
func maskTimings(tab *Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|%s\n", tab.ID, tab.Title, tab.Claim)
	fmt.Fprintf(&b, "%s\n", strings.Join(tab.Columns, "|"))
	for _, row := range tab.Rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteByte('|')
			}
			if isTimeDerived(cell) {
				b.WriteString("<time>")
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range tab.Notes {
		if !timeSensitiveNote(n) {
			fmt.Fprintf(&b, "note: %s\n", n)
		}
	}
	return b.String()
}

func wideWorkers() int {
	if n := runtime.NumCPU(); n > 4 {
		return n
	}
	return 4
}

func compareAcrossWorkers(t *testing.T, name string, run func(Config) (*Table, error)) {
	t.Helper()
	serialCfg := Config{Quick: true, Seed: 3, Workers: 1}
	wideCfg := Config{Quick: true, Seed: 3, Workers: wideWorkers()}
	serial, err := run(serialCfg)
	if err != nil {
		t.Fatalf("%s workers=1: %v", name, err)
	}
	wide, err := run(wideCfg)
	if err != nil {
		t.Fatalf("%s workers=%d: %v", name, wideCfg.Workers, err)
	}
	a, b := maskTimings(serial), maskTimings(wide)
	if a != b {
		t.Fatalf("%s table differs between Workers=1 and Workers=%d:\n--- serial ---\n%s\n--- wide ---\n%s",
			name, wideCfg.Workers, a, b)
	}
}

func TestE1DeterministicAcrossWorkers(t *testing.T) {
	compareAcrossWorkers(t, "E1", E1)
}

// TestE1DeterministicWithTracing pins the observability layer's
// non-interference contract: attaching a collector (Config.Ctx, as jpgbench
// -trace does) must not change any result — only record it.
func TestE1DeterministicWithTracing(t *testing.T) {
	plain, err := E1(Config{Quick: true, Seed: 3, Workers: 2})
	if err != nil {
		t.Fatalf("E1 untraced: %v", err)
	}
	col := obs.New()
	traced, err := E1(Config{Quick: true, Seed: 3, Workers: 2, Ctx: col.Attach(context.Background())})
	if err != nil {
		t.Fatalf("E1 traced: %v", err)
	}
	a, b := maskTimings(plain), maskTimings(traced)
	if a != b {
		t.Fatalf("E1 table differs with tracing on:\n--- off ---\n%s\n--- on ---\n%s", a, b)
	}
	if len(col.Spans()) == 0 {
		t.Fatal("traced run recorded no spans")
	}
}

// TestE1MultiStartDeterministicAcrossWorkers repeats the E1 worker-count
// invariance with multi-start placement turned on: the extra fan-out (starts
// within each CAD run, runs within the farm) must still collapse to one
// result for any pool width.
func TestE1MultiStartDeterministicAcrossWorkers(t *testing.T) {
	compareAcrossWorkers(t, "E1 starts=3", func(cfg Config) (*Table, error) {
		cfg.Starts = 3
		return E1(cfg)
	})
}

func TestE4DeterministicAcrossWorkers(t *testing.T) {
	compareAcrossWorkers(t, "E4", E4)
}

func TestMaskTimings(t *testing.T) {
	tab := &Table{
		ID: "EX", Title: "t", Claim: "c",
		Columns: []string{"a", "time", "speedup"},
	}
	tab.AddRow("x", "1.5ms", "3.1x")
	tab.AddRow("y", "2m3s", "10x")
	tab.Note("deterministic byte ratio = 0.33x")
	tab.Note("total CAD time ratio = 2.1x")
	tab.Note("ran in 35ms")
	got := maskTimings(tab)
	if strings.Contains(got, "1.5ms") || strings.Contains(got, "3.1x") || strings.Contains(got, "2m3s") {
		t.Fatalf("time cells not masked:\n%s", got)
	}
	if !strings.Contains(got, "byte ratio = 0.33x") {
		t.Fatalf("deterministic note dropped:\n%s", got)
	}
	if strings.Contains(got, "CAD time ratio") || strings.Contains(got, "35ms") {
		t.Fatalf("time-sensitive notes kept:\n%s", got)
	}
	if !strings.Contains(got, "x|<time>|<time>") {
		t.Fatalf("row masking wrong:\n%s", got)
	}
}
