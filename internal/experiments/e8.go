package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/flow"
	"repro/internal/parallel"
	"repro/internal/timing"
)

// E8 is the CAD-effort ablation behind the paper's §2.1 remark that shorter
// runs "could mean more highly optimized designs in the same design time":
// sweeping placer effort trades place-and-route time against routed
// wirelength and achievable clock frequency.
func E8(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ctx := cfg.ctx()
	part, err := device.ByName(cfg.Part)
	if err != nil {
		return nil, err
	}
	efforts := []float64{0.2, 1.0, 4.0}
	if cfg.Quick {
		efforts = []float64{0.2, 1.0}
	}
	t := &Table{
		ID:    "E8",
		Title: fmt.Sprintf("ablation: placer effort vs P&R time, wirelength and fmax (%s)", part.Name),
		Claim: "more physical-design time buys shorter interconnect and higher clock rates — " +
			"the optimisation headroom partial flows can spend per module",
		Columns: []string{"effort", "P&R time", "routed PIPs", "critical ns", "fmax MHz"},
	}
	insts := []designs.Instance{
		{Prefix: "u1/", Gen: designs.SBoxBank{N: 10, Seed: 4}},
		{Prefix: "u2/", Gen: designs.Counter{Bits: 8}},
	}
	// The effort sweep's points are independent full CAD runs; farm them and
	// emit rows in sweep order.
	type point struct {
		pr   time.Duration
		pips int
		ns   float64
		fmax float64
	}
	pts, err := parallel.MapCtx(ctx, efforts, func(ctx context.Context, _ int, e float64) (point, error) {
		full, err := flow.BuildFull(ctx, part, insts, cfg.flowOptsEffort(cfg.Seed, e))
		if err != nil {
			return point{}, fmt.Errorf("E8 effort %.1f: %w", e, err)
		}
		ta, err := timing.Analyze(full.Phys)
		if err != nil {
			return point{}, err
		}
		return point{
			pr:   full.Times.Place + full.Times.Route,
			pips: full.Phys.RoutedPIPCount(),
			ns:   ta.CriticalNs,
			fmax: ta.FMaxMHz,
		}, nil
	}, cfg.pool()...)
	if err != nil {
		return nil, err
	}
	for i, p := range pts {
		t.AddRow(fmt.Sprintf("%.1f", efforts[i]), fullFmt(p.pr),
			p.pips, fmt.Sprintf("%.2f", p.ns), fmt.Sprintf("%.1f", p.fmax))
	}
	lo, hi := pts[0], pts[len(pts)-1]
	t.Note("lowest->highest effort: routed PIPs %d -> %d, critical path %.2f -> %.2f ns",
		lo.pips, hi.pips, lo.ns, hi.ns)
	if hi.pips <= lo.pips {
		t.Note("VERDICT: PASS (effort buys shorter interconnect)")
	} else {
		t.Note("VERDICT: MIXED (annealing noise exceeded the effort effect on this seed)")
	}
	return t, nil
}
