package experiments

import (
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Quick: true, Seed: 1} }

// runAndCheck runs an experiment and asserts basic table shape plus a PASS
// verdict where the experiment emits one.
func runAndCheck(t *testing.T, name string, f func(Config) (*Table, error), wantVerdict bool) *Table {
	t.Helper()
	tab, err := f(quickCfg())
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if len(tab.Rows) == 0 || len(tab.Columns) == 0 {
		t.Fatalf("%s: empty table", name)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Fatalf("%s: row width %d != %d columns", name, len(row), len(tab.Columns))
		}
	}
	out := tab.Render()
	if !strings.Contains(out, tab.ID) || !strings.Contains(out, "claim:") {
		t.Fatalf("%s: render incomplete:\n%s", name, out)
	}
	if wantVerdict {
		verdict := strings.Join(tab.Notes, "\n")
		if !strings.Contains(verdict, "VERDICT: PASS") {
			t.Fatalf("%s: no PASS verdict:\n%s", name, out)
		}
	}
	t.Logf("\n%s", out)
	return tab
}

func TestE1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("E1 runs many CAD builds")
	}
	runAndCheck(t, "E1", E1, true)
}

func TestE2Quick(t *testing.T) { runAndCheck(t, "E2", E2, true) }

func TestE3Quick(t *testing.T) { runAndCheck(t, "E3", E3, false) }

func TestE4Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("E4 runs several CAD builds")
	}
	// E4's verdict depends on wall-clock speedups, which are robust (full
	// design is 3x the module plus unconstrained search space) but still
	// timing; assert shape and log the verdict rather than flake.
	tab := runAndCheck(t, "E4", E4, false)
	t.Log(strings.Join(tab.Notes, "; "))
}

func TestE5Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("E5 runs CAD builds")
	}
	runAndCheck(t, "E5", E5, true)
}

func TestE6Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("E6 runs CAD builds")
	}
	tab := runAndCheck(t, "E6", E6, false)
	for _, row := range tab.Rows {
		if row[len(row)-1] != "PASS" {
			t.Fatalf("tool %s failed the functional check: %v", row[0], row)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "EX", Title: "demo", Claim: "c", Columns: []string{"a", "bb"}}
	tab.AddRow(1, "xyz")
	tab.AddRow(2.5, "w")
	tab.Note("n=%d", 7)
	out := tab.Render()
	for _, want := range []string{"EX", "demo", "claim: c", "xyz", "2.5", "note: n=7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestEnumerate(t *testing.T) {
	combos := enumerate(Fig4Scenario())
	if len(combos) != 36 {
		t.Fatalf("Figure 4 scenario has %d combinations, want 36", len(combos))
	}
	for _, combo := range combos {
		if len(combo) != 3 {
			t.Fatalf("combo with %d instances", len(combo))
		}
	}
	// All combos distinct.
	seen := map[string]bool{}
	for _, combo := range combos {
		key := ""
		for _, inst := range combo {
			key += inst.Gen.Name() + "|"
		}
		if seen[key] {
			t.Fatalf("duplicate combination %s", key)
		}
		seen[key] = true
	}
}

func TestFig4InterfacesCompatible(t *testing.T) {
	for _, rs := range Fig4Scenario() {
		for _, v := range rs.Variants[1:] {
			if v.NumInputs() != rs.Variants[0].NumInputs() || v.NumOutputs() != rs.Variants[0].NumOutputs() {
				t.Errorf("region %s: variant %s interface differs from %s",
					rs.Prefix, v.Name(), rs.Variants[0].Name())
			}
		}
	}
}

func TestE7Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("E7 runs CAD builds")
	}
	runAndCheck(t, "E7", E7, true)
}

func TestE8Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("E8 runs CAD builds")
	}
	tab := runAndCheck(t, "E8", E8, false)
	t.Log(strings.Join(tab.Notes, "; "))
}

func TestE9Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("E9 runs CAD builds")
	}
	tab := runAndCheck(t, "E9", E9, false)
	t.Log(strings.Join(tab.Notes, "; "))
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Part != "XCV50" || c.Effort != 1.0 || c.Seed != 1 {
		t.Fatalf("defaults = %+v", c)
	}
	c2 := Config{Part: "XCV100", Seed: 7, Effort: 2}.withDefaults()
	if c2.Part != "XCV100" || c2.Seed != 7 || c2.Effort != 2 {
		t.Fatalf("explicit config overridden: %+v", c2)
	}
	// Unknown part propagates as an error from part-resolving experiments.
	if _, err := E5(Config{Part: "XCV9", Quick: true}); err == nil {
		t.Fatal("unknown part accepted")
	}
}

func TestE10Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("E10 runs CAD builds")
	}
	// E10's verdict compares wall-clock latencies; assert shape plus the
	// hard invariants (byte identity, all edits spliced) and log the rest.
	tab := runAndCheck(t, "E10", E10, false)
	all := strings.Join(tab.Notes, "\n")
	if strings.Contains(all, "VERDICT: FAIL") {
		t.Fatalf("E10 failed a hard invariant:\n%s", all)
	}
	t.Log(all)
}
