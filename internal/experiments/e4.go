package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/flow"
	"repro/internal/parallel"
)

// E4 reproduces §4.1's CAD-time claim: implementing one constrained
// sub-module is significantly cheaper than implementing the complete design,
// because place-and-route cost grows superlinearly with design size.
func E4(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ctx := cfg.ctx()
	part, err := device.ByName(cfg.Part)
	if err != nil {
		return nil, err
	}
	// Port counts bound the sweep: 3 modules of sbox:n=12 need exactly the
	// 24 columns of an XCV50 for their pads.
	sizes := []int{4, 8, 12}
	if cfg.Quick {
		sizes = []int{4, 8}
	}
	t := &Table{
		ID:    "E4",
		Title: fmt.Sprintf("CAD time: constrained sub-module vs complete design on %s", part.Name),
		Claim: "physical-design time for a sub-module in its constrained region is " +
			"significantly less than for the complete design",
		Columns: []string{"sbox size", "module LEs", "design LEs", "module P&R", "full P&R", "speedup"},
	}
	// Each sweep point is independent of the others, and within one point the
	// conventional full build and the floorplanned base build are independent
	// CAD runs too — all of it dispatches through the pool, with rows
	// collected by sweep index so the table order never depends on timing.
	type sizeResult struct {
		moduleLEs, designLEs int
		modPR, fullPR        time.Duration
	}
	results, err := parallel.MapCtx(ctx, sizes, func(ctx context.Context, _ int, n int) (sizeResult, error) {
		insts := []designs.Instance{
			{Prefix: "u1/", Gen: designs.SBoxBank{N: n, Seed: 1}},
			{Prefix: "u2/", Gen: designs.SBoxBank{N: n, Seed: 2}},
			{Prefix: "u3/", Gen: designs.SBoxBank{N: n, Seed: 3}},
		}
		var full *flow.Artifacts
		var base *flow.BaseBuild
		err := parallel.DoCtx(ctx, []func(context.Context) error{
			func(ctx context.Context) error {
				var err error
				if full, err = flow.BuildFull(ctx, part, insts, cfg.flowOpts(cfg.Seed)); err != nil {
					return fmt.Errorf("E4 full n=%d: %w", n, err)
				}
				return nil
			},
			func(ctx context.Context) error {
				var err error
				if base, err = flow.BuildBase(ctx, part, insts, cfg.flowOpts(cfg.Seed)); err != nil {
					return fmt.Errorf("E4 base n=%d: %w", n, err)
				}
				return nil
			},
		}, cfg.pool()...)
		if err != nil {
			return sizeResult{}, err
		}
		variant, err := flow.BuildVariant(ctx, base, "u1/", designs.SBoxBank{N: n, Seed: 9}, cfg.flowOpts(cfg.Seed))
		if err != nil {
			return sizeResult{}, fmt.Errorf("E4 variant n=%d: %w", n, err)
		}
		moduleStats := variant.Netlist.Stats()
		fullStats := full.Netlist.Stats()
		return sizeResult{
			moduleLEs: moduleStats.LUTs + moduleStats.DFFs,
			designLEs: fullStats.LUTs + fullStats.DFFs,
			modPR:     variant.Times.Place + variant.Times.Route,
			fullPR:    full.Times.Place + full.Times.Route,
		}, nil
	}, cfg.pool()...)
	if err != nil {
		return nil, err
	}
	minSpeedup := 1e9
	for i, r := range results {
		speedup := float64(r.fullPR) / float64(r.modPR)
		if speedup < minSpeedup {
			minSpeedup = speedup
		}
		t.AddRow(sizes[i], r.moduleLEs, r.designLEs,
			fullFmt(r.modPR), fullFmt(r.fullPR), fmt.Sprintf("%.1fx", speedup))
	}
	t.Note("minimum module-vs-full P&R speedup = %.1fx", minSpeedup)
	if minSpeedup > 1.5 {
		t.Note("VERDICT: PASS (constrained module P&R is significantly cheaper)")
	} else {
		t.Note("VERDICT: FAIL (no significant P&R saving)")
	}
	return t, nil
}

func fullFmt(d time.Duration) string { return d.Round(100 * time.Microsecond).String() }
