package experiments

import (
	"fmt"
	"time"

	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/flow"
)

// E4 reproduces §4.1's CAD-time claim: implementing one constrained
// sub-module is significantly cheaper than implementing the complete design,
// because place-and-route cost grows superlinearly with design size.
func E4(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	part, err := device.ByName(cfg.Part)
	if err != nil {
		return nil, err
	}
	// Port counts bound the sweep: 3 modules of sbox:n=12 need exactly the
	// 24 columns of an XCV50 for their pads.
	sizes := []int{4, 8, 12}
	if cfg.Quick {
		sizes = []int{4, 8}
	}
	t := &Table{
		ID:    "E4",
		Title: fmt.Sprintf("CAD time: constrained sub-module vs complete design on %s", part.Name),
		Claim: "physical-design time for a sub-module in its constrained region is " +
			"significantly less than for the complete design",
		Columns: []string{"sbox size", "module LEs", "design LEs", "module P&R", "full P&R", "speedup"},
	}
	minSpeedup := 1e9
	for _, n := range sizes {
		insts := []designs.Instance{
			{Prefix: "u1/", Gen: designs.SBoxBank{N: n, Seed: 1}},
			{Prefix: "u2/", Gen: designs.SBoxBank{N: n, Seed: 2}},
			{Prefix: "u3/", Gen: designs.SBoxBank{N: n, Seed: 3}},
		}
		full, err := flow.BuildFull(part, insts, flow.Options{Seed: cfg.Seed, Effort: cfg.Effort})
		if err != nil {
			return nil, fmt.Errorf("E4 full n=%d: %w", n, err)
		}
		base, err := flow.BuildBase(part, insts, flow.Options{Seed: cfg.Seed, Effort: cfg.Effort})
		if err != nil {
			return nil, fmt.Errorf("E4 base n=%d: %w", n, err)
		}
		variant, err := flow.BuildVariant(base, "u1/", designs.SBoxBank{N: n, Seed: 9}, flow.Options{Seed: cfg.Seed, Effort: cfg.Effort})
		if err != nil {
			return nil, fmt.Errorf("E4 variant n=%d: %w", n, err)
		}
		fullPR := full.Times.Place + full.Times.Route
		modPR := variant.Times.Place + variant.Times.Route
		moduleStats := variant.Netlist.Stats()
		fullStats := full.Netlist.Stats()
		speedup := float64(fullPR) / float64(modPR)
		if speedup < minSpeedup {
			minSpeedup = speedup
		}
		t.AddRow(n, moduleStats.LUTs+moduleStats.DFFs, fullStats.LUTs+fullStats.DFFs,
			fullFmt(modPR), fullFmt(fullPR), fmt.Sprintf("%.1fx", speedup))
	}
	t.Note("minimum module-vs-full P&R speedup = %.1fx", minSpeedup)
	if minSpeedup > 1.5 {
		t.Note("VERDICT: PASS (constrained module P&R is significantly cheaper)")
	} else {
		t.Note("VERDICT: FAIL (no significant P&R saving)")
	}
	return t, nil
}

func fullFmt(d time.Duration) string { return d.Round(100 * time.Microsecond).String() }
