package jpg

// The benchmark harness: one Benchmark per paper table/figure (E1..E6, see
// DESIGN.md's experiment index) plus micro-benchmarks of the pipeline
// stages. Run with:
//
//	go test -bench=. -benchmem
//
// The E* benchmarks print their result tables on the first iteration; the
// same tables are produced by `go run ./cmd/jpgbench`.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/frames"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/xdl"
	"repro/internal/xhwif"
)

// benchExperiment runs one experiment per iteration, logging the table once.
func benchExperiment(b *testing.B, name string, f func(experiments.Config) (*experiments.Table, error)) {
	b.Helper()
	logged := false
	for i := 0; i < b.N; i++ {
		tab, err := f(experiments.Config{Seed: 1, Quick: testing.Short()})
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		if !logged {
			b.Logf("\n%s", tab.Render())
			logged = true
		}
	}
}

// BenchmarkE1_Fig4Combinations regenerates Figure 4 / §4.1: 36 conventional
// CAD runs vs 10 partial runs + 1 base. The independent CAD runs go through
// the worker pool at its default width (all cores).
func BenchmarkE1_Fig4Combinations(b *testing.B) { benchExperiment(b, "E1", experiments.E1) }

// BenchmarkE1Serial is E1 with the worker pool pinned to one worker: the
// strictly serial execution of the seed repository, kept as the baseline
// the parallel farm is measured against.
func BenchmarkE1Serial(b *testing.B) {
	benchExperiment(b, "E1", func(cfg experiments.Config) (*experiments.Table, error) {
		cfg.Workers = 1
		return experiments.E1(cfg)
	})
}

// BenchmarkE1Parallel is E1 with one worker per core (explicitly, ignoring
// $JPG_WORKERS). The ns/op ratio BenchmarkE1Serial / BenchmarkE1Parallel is
// the farm's wall-clock speedup; the tables and bitstreams are byte-identical
// either way (see internal/experiments determinism tests).
func BenchmarkE1Parallel(b *testing.B) {
	benchExperiment(b, "E1", func(cfg experiments.Config) (*experiments.Table, error) {
		cfg.Workers = runtime.NumCPU()
		return experiments.E1(cfg)
	})
}

// BenchmarkE1Cold runs every E1 iteration against a fresh build cache: all
// CAD stages compute, plus the cache's own bookkeeping. Compare with
// BenchmarkE1Warm — the ns/op ratio is the amortization the cache buys.
func BenchmarkE1Cold(b *testing.B) {
	benchExperiment(b, "E1", func(cfg experiments.Config) (*experiments.Table, error) {
		cfg.Cache = cache.New(cache.Options{NoDisk: true})
		return experiments.E1(cfg)
	})
}

// BenchmarkE1Warm runs E1 against one pre-warmed build cache: every place,
// route, bitgen and partial-generation stage is served by content address.
// The determinism tests prove the tables and bitstreams stay byte-identical.
func BenchmarkE1Warm(b *testing.B) {
	c := cache.New(cache.Options{NoDisk: true})
	warm := func(cfg experiments.Config) (*experiments.Table, error) {
		cfg.Cache = c
		return experiments.E1(cfg)
	}
	if _, err := warm(experiments.Config{Seed: 1, Quick: testing.Short()}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	benchExperiment(b, "E1", warm)
}

// BenchmarkE2_BitstreamSizes regenerates the §2.1 size table: partial vs
// complete bitstream bytes across region widths and devices.
func BenchmarkE2_BitstreamSizes(b *testing.B) { benchExperiment(b, "E2", experiments.E2) }

// BenchmarkE3_ReconfigTime regenerates the §2.1 reconfiguration-time table
// over the SelectMAP download model.
func BenchmarkE3_ReconfigTime(b *testing.B) { benchExperiment(b, "E3", experiments.E3) }

// BenchmarkE4_CADTime regenerates the §4.1 CAD-time comparison: constrained
// sub-module vs complete design place-and-route.
func BenchmarkE4_CADTime(b *testing.B) { benchExperiment(b, "E4", experiments.E4) }

// BenchmarkE5_Equivalence regenerates the §3.2 correctness table: frame and
// functional equivalence of partial reconfiguration.
func BenchmarkE5_Equivalence(b *testing.B) { benchExperiment(b, "E5", experiments.E5) }

// BenchmarkE6_ToolComparison regenerates the §2.3 related-work comparison:
// JPG vs PARBIT vs JBitsDiff.
func BenchmarkE6_ToolComparison(b *testing.B) { benchExperiment(b, "E6", experiments.E6) }

// ---- micro-benchmarks of the pipeline stages ----

var benchBaseOnce sync.Once
var benchBase *flow.BaseBuild
var benchVariant *flow.Artifacts

func sharedBase(b *testing.B) (*flow.BaseBuild, *flow.Artifacts) {
	b.Helper()
	benchBaseOnce.Do(func() {
		base, err := flow.BuildBase(context.Background(), device.MustByName("XCV50"), []designs.Instance{
			{Prefix: "u1/", Gen: designs.Counter{Bits: 6}},
			{Prefix: "u2/", Gen: designs.SBoxBank{N: 8, Seed: 3}},
		}, flow.Options{Seed: 1})
		if err != nil {
			panic(err)
		}
		variant, err := flow.BuildVariant(context.Background(), base, "u1/", designs.LFSR{Bits: 6, Taps: []int{5, 2}}, flow.Options{Seed: 2})
		if err != nil {
			panic(err)
		}
		benchBase, benchVariant = base, variant
	})
	return benchBase, benchVariant
}

// BenchmarkFullBitstreamWrite measures complete-bitstream serialisation.
func BenchmarkFullBitstreamWrite(b *testing.B) {
	mem := frames.New(device.MustByName("XCV300"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bs := bitstream.WriteFull(mem)
		b.SetBytes(int64(len(bs)))
	}
}

// BenchmarkBitstreamApply measures the configuration-port VM.
func BenchmarkBitstreamApply(b *testing.B) {
	mem := frames.New(device.MustByName("XCV300"))
	bs := bitstream.WriteFull(mem)
	dst := frames.New(mem.Part)
	b.SetBytes(int64(len(bs)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bitstream.Apply(dst, bs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlaceCounter measures placement of a small module.
func BenchmarkPlaceCounter(b *testing.B) {
	p := device.MustByName("XCV50")
	for i := 0; i < b.N; i++ {
		nl, err := designs.Standalone(designs.Counter{Bits: 8}, "cnt", "u1/")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := place.Place(p, nl, place.Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteCounter measures routing of a small module.
func BenchmarkRouteCounter(b *testing.B) {
	p := device.MustByName("XCV50")
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		nl, err := designs.Standalone(designs.Counter{Bits: 8}, "cnt", "u1/")
		if err != nil {
			b.Fatal(err)
		}
		pd, err := place.Place(p, nl, place.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := route.Route(pd, route.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnnealMove measures one proposed move of the placement anneal —
// the inner loop the incremental-HPWL bookkeeping exists for. The allocation
// column is the contract: 0 allocs/op in steady state.
func BenchmarkAnnealMove(b *testing.B) {
	p := device.MustByName("XCV50")
	nl, err := designs.Standalone(designs.SBoxBank{N: 16, Seed: 9}, "sb", "u1/")
	if err != nil {
		b.Fatal(err)
	}
	mb, err := place.NewMoveBencher(p, nl, 3)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		mb.Step(2.0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mb.Step(2.0)
	}
}

// BenchmarkRouteNet measures one rip-up-and-reroute of a net — the unit of
// work the PathFinder iterations repeat. The allocation column is the
// contract: 0 allocs/op once the pooled scratch is warm.
func BenchmarkRouteNet(b *testing.B) {
	p := device.MustByName("XCV50")
	nl, err := designs.Standalone(designs.SBoxBank{N: 16, Seed: 9}, "sb", "u1/")
	if err != nil {
		b.Fatal(err)
	}
	pd, err := place.Place(p, nl, place.Options{Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	nb, err := route.NewNetBencher(pd)
	if err != nil {
		b.Fatal(err)
	}
	defer nb.Close()
	for i := 0; i < 200; i++ {
		if err := nb.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := nb.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiStartPlace measures K-start placement at 1 worker vs all
// cores; the ns/op ratio is the multi-start pool's wall-clock speedup. The
// chosen placement is byte-identical across the sub-benchmarks (see
// internal/place's determinism tests).
func BenchmarkMultiStartPlace(b *testing.B) {
	p := device.MustByName("XCV50")
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nl, err := designs.Standalone(designs.SBoxBank{N: 12, Seed: 5}, "sb", "u1/")
				if err != nil {
					b.Fatal(err)
				}
				_, err = place.Place(p, nl, place.Options{Seed: 7, Starts: 8, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJPGGeneratePartial measures the JPG tool itself: XDL/UCF parse,
// JBits replay, and partial-bitstream emission (excluding the CAD runs).
func BenchmarkJPGGeneratePartial(b *testing.B) {
	base, variant := sharedBase(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		proj, err := core.NewProject(base.Bitstream)
		if err != nil {
			b.Fatal(err)
		}
		m, err := proj.AddModule("v", variant.XDL, variant.UCF)
		if err != nil {
			b.Fatal(err)
		}
		res, err := proj.GeneratePartial(m, core.GenerateOptions{Strict: true})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(res.Bitstream)))
	}
}

// BenchmarkPartialDownload measures a partial download on the simulated
// board (dynamic reconfiguration of a running device).
func BenchmarkPartialDownload(b *testing.B) {
	base, variant := sharedBase(b)
	proj, err := core.NewProject(base.Bitstream)
	if err != nil {
		b.Fatal(err)
	}
	m, err := proj.AddModule("v", variant.XDL, variant.UCF)
	if err != nil {
		b.Fatal(err)
	}
	res, err := proj.GeneratePartial(m, core.GenerateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	board := xhwif.NewBoard(proj.Part)
	if _, err := board.Download(base.Bitstream); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(res.Bitstream)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := board.Download(res.Bitstream); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphBuild measures routing-graph construction per part.
func BenchmarkGraphBuild(b *testing.B) {
	for _, name := range []string{"XCV50", "XCV300"} {
		b.Run(name, func(b *testing.B) {
			p := device.MustByName(name)
			for i := 0; i < b.N; i++ {
				// Bypass the cache to measure the build itself.
				g := device.NewGraphUncached(p)
				if g.NumPIPs() == 0 {
					b.Fatal("empty graph")
				}
			}
		})
	}
}

// BenchmarkXDLRoundTrip measures the XDL emit+parse path JPG depends on.
func BenchmarkXDLRoundTrip(b *testing.B) {
	_, variant := sharedBase(b)
	b.SetBytes(int64(len(variant.XDL)))
	for i := 0; i < b.N; i++ {
		if _, err := xdl.Load(variant.XDL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7_Granularity runs the column-region vs diff-minimal partial
// bitstream ablation.
func BenchmarkE7_Granularity(b *testing.B) { benchExperiment(b, "E7", experiments.E7) }

// BenchmarkE8_EffortSweep runs the placer-effort vs timing ablation.
func BenchmarkE8_EffortSweep(b *testing.B) { benchExperiment(b, "E8", experiments.E8) }

// BenchmarkE9_GuidedFlow runs the guided re-implementation experiment.
func BenchmarkE9_GuidedFlow(b *testing.B) { benchExperiment(b, "E9", experiments.E9) }
