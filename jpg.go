// Package jpg is the public API of the JPG reproduction: a partial-bitstream
// generation toolchain for a simulated Xilinx Virtex FPGA family, after
// "JPG - A Partial Bitstream Generation Tool to Support Partial
// Reconfiguration in Virtex FPGAs" (Raghavan & Sutton, 2002).
//
// The package re-exports the pieces a downstream user composes:
//
//   - the device model and configuration memory (Part, Memory, Region);
//   - the CAD flow (BuildBase, BuildVariant, BuildFull) over the workload
//     generator library (Counter, LFSR, RippleAdder, BinaryFIR,
//     StringMatcher, SBoxBank);
//   - the JPG tool itself (NewProject, Project.AddModule,
//     Project.GeneratePartial) consuming XDL/UCF pairs;
//   - a simulated board (NewBoard) for downloads and readback;
//   - the PARBIT and JBitsDiff baselines;
//   - bitstream utilities (WriteFull, WritePartialForFARs, Apply, Dump).
//
// See examples/ for runnable end-to-end scenarios and DESIGN.md for the
// system inventory.
package jpg

import (
	"context"
	"fmt"
	"repro/internal/bitfile"
	"repro/internal/bitstream"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/extract"
	"repro/internal/faults"
	"repro/internal/flow"
	"repro/internal/frames"

	"repro/internal/jbits"
	"repro/internal/jbitsdiff"
	"repro/internal/jroute"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/parbit"
	"repro/internal/sim"
	"repro/internal/timing"
	"repro/internal/ucf"
	"repro/internal/xhwif"
)

// Device model.
type (
	// Part describes one Virtex family member (XCV50..XCV1000).
	Part = device.Part
	// Memory is a device's configuration memory (all frames).
	Memory = frames.Memory
	// Region is a rectangular CLB region (0-based, inclusive).
	Region = frames.Region
	// FAR addresses one configuration frame.
	FAR = device.FAR
)

// PartByName returns the named Virtex part (e.g. "XCV300").
func PartByName(name string) (*Part, error) { return device.ByName(name) }

// Parts returns the family catalog, smallest to largest.
func Parts() []*Part { return device.All() }

// NewMemory returns blank configuration memory for a part.
func NewMemory(p *Part) *Memory { return frames.New(p) }

// CAD flow and workloads.
type (
	// Generator creates one parameterized logic module.
	Generator = designs.Generator
	// Instance names one module of a partitioned base design.
	Instance = designs.Instance
	// FlowOptions tunes the CAD flow (seed, placer effort).
	FlowOptions = flow.Options
	// BaseBuild is a Phase-1 result: base design, floorplan, artifacts.
	BaseBuild = flow.BaseBuild
	// Artifacts bundles one CAD run's outputs (XDL, UCF, NCD, bitstream).
	Artifacts = flow.Artifacts

	// The workload generator library.
	Counter       = designs.Counter
	LFSR          = designs.LFSR
	RippleAdder   = designs.RippleAdder
	BinaryFIR     = designs.BinaryFIR
	StringMatcher = designs.StringMatcher
	SBoxBank      = designs.SBoxBank
)

// BuildBase implements a floorplanned, partitioned base design (Phase 1).
// The context carries observability (see NewTraceCollector); tracing never
// changes results.
func BuildBase(ctx context.Context, p *Part, insts []Instance, opts FlowOptions) (*BaseBuild, error) {
	return flow.BuildBase(ctx, p, insts, opts)
}

// BuildVariant implements one sub-module variant as its own constrained
// project (Phase 2), producing the XDL/UCF pair JPG consumes.
func BuildVariant(ctx context.Context, base *BaseBuild, prefix string, gen Generator, opts FlowOptions) (*Artifacts, error) {
	return flow.BuildVariant(ctx, base, prefix, gen, opts)
}

// BuildFull implements a complete design with the conventional flow.
func BuildFull(ctx context.Context, p *Part, insts []Instance, opts FlowOptions) (*Artifacts, error) {
	return flow.BuildFull(ctx, p, insts, opts)
}

// Concurrent farms. Per-variant CAD runs are independent projects, so
// batches dispatch through a bounded worker pool (all cores by default, or
// $JPG_WORKERS); results are collected by index and are byte-identical to
// serial execution for any worker count.
type (
	// VariantSpec names one Phase-2 re-implementation for BuildVariants.
	VariantSpec = flow.VariantSpec
	// WorkerOption tunes a concurrent batch (see WithWorkers).
	WorkerOption = parallel.Option
)

// WithWorkers bounds a batch to n concurrent workers (0 = all cores, 1 =
// strictly serial).
func WithWorkers(n int) WorkerOption { return parallel.WithWorkers(n) }

// Observability (see internal/obs). A TraceCollector attached to the
// context passed into the build functions records hierarchical spans for
// every CAD stage (map, place, route, bitgen) on per-worker lanes;
// MetricsNow snapshots the always-on registry of counters, gauges and
// histograms (graph-cache hits, frames emitted, pool queue depth, ...).
type (
	// TraceCollector gathers spans for one run and exports them as plain
	// JSON or the Chrome trace-event format (chrome://tracing).
	TraceCollector = obs.Collector
	// MetricsSnapshot is a point-in-time copy of the metrics registry.
	MetricsSnapshot = obs.Snapshot
)

// NewTraceCollector returns an empty collector; attach it with
// (*TraceCollector).Attach(ctx) and pass the returned context to the build
// functions.
func NewTraceCollector() *TraceCollector { return obs.New() }

// MetricsNow snapshots the process-wide metrics registry.
func MetricsNow() MetricsSnapshot { return obs.Default.Snapshot() }

// Build cache (see internal/cache). A Cache memoizes CAD stage results —
// map, place, route, bitgen, partial generation — under content-addressed
// keys derived from every input the stage consumes, so repeated identical
// work is fetched instead of recomputed. Caching never changes results:
// artifacts are byte-identical with the cache cold, warm or absent, at any
// worker count. Attach one to a context with WithCache for the Build*
// functions, or set Project.Cache for partial generation.
type (
	// Cache is a bounded, concurrency-safe content-addressed store with an
	// optional on-disk tier.
	Cache = cache.Cache
	// CacheOptions bounds a cache (entries, bytes, disk directory).
	CacheOptions = cache.Options
	// CacheStats is a point-in-time cache summary (per-stage hit rates).
	CacheStats = cache.Stats
)

// NewCache returns a build cache (zero options select the defaults: 4096
// entries, 256 MiB, disk under $JPG_CACHE_DIR when set).
func NewCache(o CacheOptions) *Cache { return cache.New(o) }

// WithCache attaches a build cache to a context; the CAD flow consults it
// for every stage run under that context.
func WithCache(ctx context.Context, c *Cache) context.Context { return cache.With(ctx, c) }

// DefaultCache returns the process-wide cache configured from the
// environment ($JPG_CACHE / $JPG_CACHE_DIR), or nil when disabled.
func DefaultCache() *Cache { return cache.Default() }

// BuildVariants implements a batch of sub-module variants concurrently
// (Phase 2 as a farm). Project.GeneratePartialAll is the matching
// concurrent partial-bitstream generator.
func BuildVariants(ctx context.Context, base *BaseBuild, specs []VariantSpec, opts ...WorkerOption) ([]*Artifacts, error) {
	return flow.BuildVariants(ctx, base, specs, opts...)
}

// BuildFullMany implements many complete designs concurrently with the
// conventional flow (the paper's one-run-per-combination baseline).
func BuildFullMany(ctx context.Context, p *Part, combos [][]Instance, opts FlowOptions, popts ...WorkerOption) ([]*Artifacts, error) {
	return flow.BuildFullMany(ctx, p, combos, opts, popts...)
}

// The JPG tool.
type (
	// Project is a JPG project over a base design's bitstream.
	Project = core.Project
	// ProjectModule is a registered sub-module variant.
	ProjectModule = core.Module
	// GenerateOptions controls partial-bitstream generation.
	GenerateOptions = core.GenerateOptions
	// PartialResult reports one generated partial bitstream.
	PartialResult = core.Result
)

// NewProject initialises a JPG project from a complete base bitstream.
func NewProject(baseBitstream []byte) (*Project, error) { return core.NewProject(baseBitstream) }

// NewProjectForPart initialises a project from explicit device state.
func NewProjectForPart(p *Part, base *Memory) (*Project, error) {
	return core.NewProjectForPart(p, base)
}

// Board simulation.
type (
	// Board is a simulated FPGA board with a SelectMAP-timed config port.
	Board = xhwif.Board
	// HWIF is the board-access interface (the paper's XHWIF).
	HWIF = xhwif.HWIF
	// DownloadStats reports one bitstream download.
	DownloadStats = xhwif.DownloadStats
)

// NewBoard returns a board holding a blank device of the given part.
func NewBoard(p *Part) *Board { return xhwif.NewBoard(p) }

// Robustness layer for the download/reconfiguration path (see
// internal/xhwif and internal/faults). Board downloads are transactional —
// a rejected stream leaves the device exactly as it was — and ReliableHWIF
// adds bounded retries with exponential backoff + deterministic jitter,
// per-download deadlines, and verify-after-write readback over any HWIF.
// FaultInjector wraps a HWIF with seedable, reproducible link faults
// (error-on-Nth, truncation, corruption, latency) so the retry and rollback
// behaviour can be proven deterministically.
type (
	// ReliableHWIF retries, times out and verifies downloads over a HWIF.
	ReliableHWIF = xhwif.ReliableHWIF
	// RetryPolicy tunes a ReliableHWIF (attempts, backoff, deadline,
	// verification).
	RetryPolicy = xhwif.RetryPolicy
	// FaultSpec selects which download attempts are faulted and how.
	FaultSpec = faults.Spec
	// FaultInjector perturbs downloads through a HWIF per a FaultSpec.
	FaultInjector = faults.Injector
)

// NewReliable wraps a board (or any HWIF) with retries, deadlines and
// verify-after-write per the policy.
func NewReliable(inner HWIF, p RetryPolicy) *ReliableHWIF { return xhwif.NewReliable(inner, p) }

// WrapFaults wraps a board (or any HWIF) with deterministic fault
// injection.
func WrapFaults(inner HWIF, s FaultSpec) *FaultInjector { return faults.Wrap(inner, s) }

// ParseFaultSpec reads a fault spec string, e.g. "nth=2,mode=error,seed=7"
// (the $JPG_FAULTS syntax).
func ParseFaultSpec(s string) (FaultSpec, error) { return faults.Parse(s) }

// Bitstream utilities.

// WriteFull serialises configuration memory as a complete bitstream.
func WriteFull(mem *Memory) []byte { return bitstream.WriteFull(mem) }

// WritePartialForFARs serialises only the given frames as a partial
// bitstream.
func WritePartialForFARs(mem *Memory, fars []FAR) ([]byte, error) {
	return bitstream.WritePartialForFARs(mem, fars)
}

// Apply runs a bitstream through the configuration-port model into mem.
func Apply(mem *Memory, bs []byte) (bitstream.Stats, error) { return bitstream.Apply(mem, bs) }

// DumpBitstream renders a bitstream's packet structure as text.
func DumpBitstream(bs []byte) (string, error) { return bitstream.Dump(bs) }

// InferPart identifies the part a bitstream targets.
func InferPart(bs []byte) (*Part, error) { return bitstream.InferPart(bs) }

// BitfileHeader is the metadata header of a Xilinx .bit container.
type BitfileHeader = bitfile.Header

// WrapBitfile encloses raw configuration data in a .bit container.
func WrapBitfile(h BitfileHeader, raw []byte) []byte { return bitfile.Wrap(h, raw) }

// UnwrapBitfile returns the raw configuration data from a possibly-wrapped
// file (raw streams pass through).
func UnwrapBitfile(file []byte) ([]byte, BitfileHeader, error) { return bitfile.Unwrap(file) }

// Baselines.
type (
	// ParbitOptions mirrors PARBIT's options file.
	ParbitOptions = parbit.Options
	// DiffCore is a JBitsDiff-extracted difference core.
	DiffCore = jbitsdiff.Core
)

// ParbitTransform extracts a column-window partial bitstream from a complete
// bitstream (the PARBIT baseline).
func ParbitTransform(completeBitstream []byte, o ParbitOptions) ([]byte, error) {
	return parbit.Transform(completeBitstream, o)
}

// JBitsDiffExtract diffs two complete bitstreams into a core (the JBitsDiff
// baseline).
func JBitsDiffExtract(reference, withCore []byte) (*DiffCore, error) {
	return jbitsdiff.Extract(reference, withCore)
}

// Netlist is a technology-mapped logical design.
type Netlist = netlist.Design

// EmitNetlist serialises a netlist as .net text.
func EmitNetlist(d *Netlist) (string, error) { return netlist.EmitText(d) }

// ParseNetlist reads .net text back into a netlist.
func ParseNetlist(text string) (*Netlist, error) { return netlist.ParseText(text) }

// Implement places, routes and bitgens an arbitrary netlist with optional
// UCF constraint text.
func Implement(ctx context.Context, p *Part, nl *Netlist, ucfText string, opts FlowOptions) (*Artifacts, error) {
	var cons *ucf.Constraints
	if ucfText != "" {
		var err error
		if cons, err = ucf.Parse(ucfText); err != nil {
			return nil, err
		}
	}
	return flow.Implement(ctx, p, nl, cons, opts)
}

// Delta-driven incremental flow: absorb netlist edits by diffing against the
// previous revision and splicing the untouched placement/routing/frames.
type (
	// NetlistDiff classifies a structural diff between two netlist
	// revisions ("empty", "init-only", "structural").
	NetlistDiff = netlist.DesignDiff
	// EditSession is the stateful incremental engine over an edit stream.
	EditSession = flow.EditSession
	// IncrementalResult is the outcome of absorbing one edit.
	IncrementalResult = flow.IncrementalResult
	// EditLoop drives edit -> regenerate -> download against a project.
	EditLoop = core.EditLoop
	// EditResult bundles one trip around the edit loop.
	EditResult = core.EditResult
)

// DiffNetlists diffs two netlist revisions.
func DiffNetlists(prev, next *Netlist) *NetlistDiff { return netlist.Diff(prev, next) }

// NewEditSession starts an incremental session from a previous
// implementation, with optional UCF constraint text (which must be what prev
// was implemented with).
func NewEditSession(prev *Artifacts, ucfText string, opts FlowOptions) (*EditSession, error) {
	var cons *ucf.Constraints
	if ucfText != "" {
		var err error
		if cons, err = ucf.Parse(ucfText); err != nil {
			return nil, err
		}
	}
	return flow.NewEditSession(prev, cons, opts)
}

// Incremental re-implements an edited netlist against a previous
// implementation in one shot, splicing whatever the edit leaves untouched.
func Incremental(ctx context.Context, prev *Artifacts, next *Netlist, ucfText string, opts FlowOptions) (*IncrementalResult, error) {
	var cons *ucf.Constraints
	if ucfText != "" {
		var err error
		if cons, err = ucf.Parse(ucfText); err != nil {
			return nil, err
		}
	}
	return flow.Incremental(ctx, prev, next, cons, opts)
}

// NewEditLoop couples a project to an edit session (see core.EditLoop).
func NewEditLoop(proj *Project, sess *EditSession, name string, opts GenerateOptions) *EditLoop {
	return core.NewEditLoop(proj, sess, name, opts)
}

// JBits is the low-level resource API over configuration memory (LUTs,
// slice control, PIPs, pads, block-RAM content).
type JBits = jbits.JBits

// NewJBits returns a JBits view over a configuration memory.
func NewJBits(mem *Memory) *JBits { return jbits.New(mem) }

// BRAMWordsPerBlock is the addressable capacity of one block RAM (256 x 16).
const BRAMWordsPerBlock = device.BRAMWordsPerBlock

// Run-time routing (the JRoute layer of the JBits ecosystem).
type (
	// RuntimeRouter routes individual connections on live configuration
	// state, claiming only free resources.
	RuntimeRouter = jroute.Router
	// NodeID identifies a routing node on a part.
	NodeID = device.NodeID
	// PIP is one programmable interconnect point.
	PIP = device.PIP
)

// NewRuntimeRouter scans a configuration and returns a router over its free
// resources.
func NewRuntimeRouter(mem *Memory) (*RuntimeRouter, error) { return jroute.New(mem) }

// CellOutputNode returns the routing node a placed cell drives in a CAD
// run's physical design (e.g. to probe an internal signal at run time).
func CellOutputNode(a *Artifacts, cellName string) (NodeID, error) {
	c, ok := a.Netlist.Cell(cellName)
	if !ok {
		return 0, fmt.Errorf("jpg: no cell %q in design %q", cellName, a.Netlist.Name)
	}
	return a.Phys.OutputNode(c)
}

// PadOutputNode returns the fabric-driven node of a named pad (the
// destination for routing a signal off-chip).
func PadOutputNode(p *Part, padName string) (NodeID, error) {
	pd, err := device.ParsePad(padName)
	if err != nil {
		return 0, err
	}
	if !p.ValidPad(pd) {
		return 0, fmt.Errorf("jpg: pad %q not on %s", padName, p.Name)
	}
	return p.PadNodeO(pd), nil
}

// EnableOutputPad marks a pad in-use as an output in the configuration, so
// a run-time-routed probe appears as a device output.
func EnableOutputPad(mem *Memory, padName string) error {
	pd, err := device.ParsePad(padName)
	if err != nil {
		return err
	}
	jb := jbits.New(mem)
	if err := jb.SetPadMode(pd, device.PadCtlInUse, true); err != nil {
		return err
	}
	return jb.SetPadMode(pd, device.PadCtlOutEn, true)
}

// DiffFrames returns the frames differing between two configurations, the
// raw material for a minimal patch bitstream.
func DiffFrames(a, b *Memory) ([]FAR, error) { return a.Diff(b) }

// ExtractedDesign is a netlist recovered from configuration memory.
type ExtractedDesign = extract.Design

// ExtractDesign reconstructs the logical design configured in mem (the
// inverse of bitgen; useful for verification and readback analysis).
func ExtractDesign(mem *Memory) (*ExtractedDesign, error) { return extract.FromMemory(mem) }

// Simulator is a cycle-based functional simulator for netlists.
type Simulator = sim.Simulator

// TimingAnalysis is a static timing analysis result.
type TimingAnalysis = timing.Analysis

// AnalyzeTiming runs static timing analysis over a CAD run's routed design.
func AnalyzeTiming(a *Artifacts) (*TimingAnalysis, error) { return timing.Analyze(a.Phys) }

// SimulateExtracted builds a simulator for a design extracted from a device,
// so examples and tests can observe the (simulated) hardware behave. Port
// names are pad names (e.g. "P_T5"); map design ports through the base
// build's Pads table.
func SimulateExtracted(d *ExtractedDesign) (*Simulator, error) { return sim.New(d.Netlist) }
