// Command xdl converts between the binary NCD physical database and the
// ASCII XDL form, mirroring the Xilinx xdl utility the JPG flow depends on
// (paper §3.2: "The XDL utility converts the corresponding .ncd file into an
// .xdl file").
//
// Usage:
//
//	xdl -ncd2xdl design.ncd -o design.xdl
//	xdl -xdl2ncd design.xdl -o design.ncd
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ncd"
	"repro/internal/xdl"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xdl:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		toXDL = flag.String("ncd2xdl", "", "NCD file to convert to XDL")
		toNCD = flag.String("xdl2ncd", "", "XDL file to convert to NCD")
		out   = flag.String("o", "", "output file (required)")
	)
	flag.Parse()
	if *out == "" || (*toXDL == "") == (*toNCD == "") {
		flag.Usage()
		return fmt.Errorf("exactly one of -ncd2xdl or -xdl2ncd, plus -o, is required")
	}
	switch {
	case *toXDL != "":
		data, err := os.ReadFile(*toXDL)
		if err != nil {
			return err
		}
		f, err := ncd.UnmarshalFlat(data)
		if err != nil {
			return err
		}
		text, err := xdl.EmitFlat(f)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes, design %q on %s)\n", *out, len(text), f.Design, f.Part)
	case *toNCD != "":
		text, err := os.ReadFile(*toNCD)
		if err != nil {
			return err
		}
		f, err := xdl.Parse(string(text))
		if err != nil {
			return err
		}
		data, err := ncd.MarshalFlat(f)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes, design %q on %s)\n", *out, len(data), f.Design, f.Part)
	}
	return nil
}
