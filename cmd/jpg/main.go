// Command jpg is the partial-bitstream generation tool: the CLI counterpart
// of the paper's GUI. It initialises a project from the base design's
// complete bitstream, parses a sub-module variant's XDL and UCF files,
// replays the module through the JBits layer, and writes a partial
// bitstream. Options mirror the paper's tool: a floorplan view of the target
// region, write-back onto the base bitstream (option 2), and download to a
// (simulated) board over XHWIF.
//
// Usage:
//
//	jpg -base base.bit -xdl variant.xdl -ucf variant.ucf -o partial.bit \
//	    [-writeback rewritten.bit] [-floorplan] [-strict] [-incremental] \
//	    [-verify] [-download] [-v] [-faults spec] [-retries n] [-download-timeout d]
//	jpg -serve :8080 [-log-level debug] [-cache] [-cache-dir DIR]
//
// -serve switches the binary into the jpgd HTTP service (see cmd/jpgd):
// the same generation engine behind POST /v1/generate, with /metrics,
// health probes, structured logs and a flight recorder.
//
// -incremental uses the flow's dirty-frame tracking to emit only the frames
// whose content actually differs from the base — the smallest partial that
// reconfigures the module, at the cost of being tied to this exact base.
//
// With -v the tool traces its stages (project init, XDL parse, partial
// generation, download) and prints a per-stage time summary plus the key
// metrics after the run.
//
// The -download path is hardened: -retries and -download-timeout wrap the
// board in a retrying, verifying reliability layer, and -faults (or
// $JPG_FAULTS) injects deterministic link faults to exercise it — e.g.
// -faults "nth=2,mode=error,seed=7" fails every second download attempt.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/bitfile"
	"repro/internal/bitstream"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/jpgd"
	"repro/internal/obs"
	jpglog "repro/internal/obs/log"
	"repro/internal/xhwif"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jpg:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		basePath  = flag.String("base", "", "complete bitstream of the base design (required)")
		xdlPath   = flag.String("xdl", "", "variant XDL file (required)")
		ucfPath   = flag.String("ucf", "", "variant UCF file (required)")
		outPath   = flag.String("o", "partial.bit", "output partial bitstream")
		writeBack = flag.String("writeback", "", "also write the base bitstream with the module applied (the paper's option 2)")
		floorplan = flag.Bool("floorplan", false, "print the module's floorplan footprint")
		strict    = flag.Bool("strict", false, "reject modules escaping their declared AREA_GROUP columns")
		download  = flag.Bool("download", false, "download to a simulated board and report the reconfiguration time")
		compress  = flag.Bool("compress", false, "emit an MFWR-compressed partial bitstream")
		incr      = flag.Bool("incremental", false, "emit only the frames the module actually changes against the base (a minimal delta partial; not relocatable)")
		verify    = flag.Bool("verify", false, "independently re-decode the generated partial (internal/bitlint) and fail on any error finding")
		verbose   = flag.Bool("v", false, "trace the tool's stages and print a per-stage summary and metrics")
		useCache  = flag.Bool("cache", cache.EnvEnabled(), "memoize partial-bitstream generation (content-addressed; default $JPG_CACHE/$JPG_CACHE_DIR)")
		cacheDir  = flag.String("cache-dir", os.Getenv(cache.EnvDir), "persist the cache on disk under this directory (implies -cache)")
		faultSpec = flag.String("faults", os.Getenv(faults.Env), "inject deterministic download faults (e.g. \"nth=2,mode=error,seed=7\"; default $JPG_FAULTS)")
		retries   = flag.Int("retries", 0, "max download attempts through the reliability layer (0 = xhwif default; implies the layer when > 0)")
		dlTimeout = flag.Duration("download-timeout", 0, "deadline for one download including retries (implies the reliability layer when > 0)")
		serve     = flag.String("serve", "", "run as the jpgd HTTP service on this address (e.g. :8080) instead of a one-shot generation")
		logLevel  = flag.String("log-level", "info", "service log level with -serve: debug, info, warn, error")
	)
	flag.Parse()
	if *serve != "" {
		return serveDaemon(*serve, *logLevel, *useCache, *cacheDir)
	}
	ctx := context.Background()
	var col *obs.Collector
	if *verbose {
		col = obs.New()
		ctx = col.Attach(ctx)
	}
	if *basePath == "" || *xdlPath == "" || *ucfPath == "" {
		flag.Usage()
		return fmt.Errorf("-base, -xdl and -ucf are required")
	}
	baseFile, err := os.ReadFile(*basePath)
	if err != nil {
		return err
	}
	baseBS, baseHdr, err := bitfile.Unwrap(baseFile)
	if err != nil {
		return err
	}
	if baseHdr.Part != "" {
		fmt.Printf("base .bit header: design %q, part %s, %s %s\n",
			baseHdr.Design, baseHdr.Part, baseHdr.Date, baseHdr.Time)
	}
	xdlText, err := os.ReadFile(*xdlPath)
	if err != nil {
		return err
	}
	ucfText, err := os.ReadFile(*ucfPath)
	if err != nil {
		return err
	}

	_, sp := obs.Start(ctx, "project.init")
	proj, err := core.NewProject(baseBS)
	sp.End()
	if err != nil {
		return err
	}
	if *useCache || *cacheDir != "" {
		proj.Cache = cache.New(cache.Options{Dir: *cacheDir, NoDisk: *cacheDir == ""})
	}
	fmt.Printf("project: %s, base bitstream %d bytes\n", proj.Part, len(baseBS))

	_, sp = obs.Start(ctx, "xdl.parse")
	m, err := proj.AddModule(*xdlPath, string(xdlText), string(ucfText))
	sp.End()
	if err != nil {
		return err
	}
	fmt.Println("module:", m.Stats())
	if *floorplan {
		fmt.Print(m.FloorplanASCII(proj.Part))
	}

	_, sp = obs.Start(ctx, "generate.partial")
	res, err := proj.GeneratePartial(m, core.GenerateOptions{
		WriteBack: *writeBack != "",
		Strict:    *strict,
		Compress:  *compress,
		Delta:     *incr,
		Verify:    *verify,
	})
	sp.End()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, wrap(*xdlPath, proj.Part.Name, res.Bitstream), 0o644); err != nil {
		return err
	}
	fmt.Printf("partial bitstream: %d bytes, %d frames (%d changed), columns %d..%d -> %s\n",
		len(res.Bitstream), len(res.FARs), res.FramesChanged, res.Region.C1+1, res.Region.C2+1, *outPath)
	fmt.Printf("size vs full: %.1f%%\n", 100*float64(len(res.Bitstream))/float64(len(baseBS)))
	if *verify {
		fmt.Println("verify: partial re-decoded independently, differential against the port VM clean")
	}

	if *writeBack != "" {
		full := bitstream.WriteFull(proj.Base)
		if err := os.WriteFile(*writeBack, wrap("writeback", proj.Part.Name, full), 0o644); err != nil {
			return err
		}
		fmt.Printf("write-back bitstream: %d bytes -> %s\n", len(full), *writeBack)
	}

	if *download {
		spec, err := faults.Parse(*faultSpec)
		if err != nil {
			return err
		}
		var hw xhwif.HWIF = xhwif.NewBoard(proj.Part)
		var injector *faults.Injector
		if spec.Enabled() {
			injector = faults.Wrap(hw, spec)
			hw = injector
			fmt.Printf("fault injection: %s\n", spec)
		}
		var reliable *xhwif.ReliableHWIF
		if spec.Enabled() || *retries > 0 || *dlTimeout > 0 {
			reliable = xhwif.NewReliable(hw, xhwif.RetryPolicy{
				MaxAttempts: *retries,
				Timeout:     *dlTimeout,
				Verify:      true,
			})
			hw = reliable
		}
		_, sp = obs.Start(ctx, "download")
		dsFull, err := hw.Download(baseBS)
		if err != nil {
			sp.End()
			return err
		}
		ds, err := hw.Download(res.Bitstream)
		sp.End()
		if err != nil {
			return err
		}
		fmt.Printf("download (SelectMAP @ %.0f MHz): full %v, partial %v (%.1fx faster)\n",
			xhwif.DefaultClockHz/1e6, dsFull.ModelTime, ds.ModelTime,
			float64(dsFull.ModelTime)/float64(ds.ModelTime))
		if reliable != nil {
			r, a, v := reliable.Counts()
			line := fmt.Sprintf("reliability: %d attempt(s) full, %d attempt(s) partial; %d retr%s, %d abort(s), %d verify failure(s)",
				dsFull.Attempts, ds.Attempts, r, plural(r, "y", "ies"), a, v)
			if injector != nil {
				attempts, injected := injector.Counts()
				line += fmt.Sprintf("; faults injected %d/%d", injected, attempts)
			}
			fmt.Println(line)
		}
	}
	if col != nil {
		fmt.Println("-- stage summary --")
		fmt.Print(col.StageSummary())
		fmt.Println("-- metrics --")
		fmt.Print(obs.Default.Snapshot().Render())
	}
	return nil
}

// serveDaemon runs the tool as the jpgd service (see cmd/jpgd and
// internal/jpgd) — the same binary, switched into a long-lived server.
func serveDaemon(addr, logLevel string, useCache bool, cacheDir string) error {
	level, err := jpglog.ParseLevel(logLevel)
	if err != nil {
		return err
	}
	cfg := jpgd.Config{
		Logger: jpglog.New(os.Stderr, level),
		Serve:  jpgd.ServeOptionsFromEnv(),
	}
	if useCache || cacheDir != "" {
		cfg.Cache = cache.New(cache.Options{Dir: cacheDir, NoDisk: cacheDir == ""})
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("jpg serving on %s\n", addr)
	return jpgd.New(cfg).ListenAndServe(ctx, addr)
}

func plural(n int64, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// wrap encloses raw configuration data in a .bit container with a metadata
// header.
func wrap(design, part string, raw []byte) []byte {
	now := time.Now()
	return bitfile.Wrap(bitfile.Header{
		Design: design,
		Part:   part,
		Date:   now.Format("2006/01/02"),
		Time:   now.Format("15:04:05"),
	}, raw)
}
