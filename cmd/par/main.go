// Command par runs the CAD flow (synthesise, floorplan, place, route,
// bitgen) — the reproduction's counterpart of the Xilinx Foundation
// implementation tools. It builds either a partitioned base design (Phase 1)
// or a sub-module variant project constrained by a base design's UCF
// (Phase 2), emitting the NCD, XDL, UCF and bitstream files the rest of the
// toolchain consumes.
//
// Phase 1 (base design):
//
//	par -part XCV50 -base "u1/=counter:bits=6;u2/=sbox:n=8,seed=3" -o out/base
//
// Phase 2 (variant of instance u1/, floorplanned by the base's UCF):
//
//	par -part XCV50 -variant "u1/=lfsr:bits=6,taps=5.2" -baseucf out/base.ucf -o out/u1_lfsr
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bitfile"
	"repro/internal/cache"
	"repro/internal/designs"
	"repro/internal/device"
	"repro/internal/flow"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/timing"
	"repro/internal/ucf"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "par:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		partName = flag.String("part", "XCV50", "target device")
		baseSpec = flag.String("base", "", "base design instances (prefix=module;...)")
		netPath  = flag.String("netlist", "", "implement a .net netlist file instead of generated modules")
		varSpec  = flag.String("variant", "", "variant instance (prefix=module)")
		baseUCF  = flag.String("baseucf", "", "base design UCF (required with -variant; optional with -netlist)")
		outStem  = flag.String("o", "design", "output file stem (writes stem.ncd/.xdl/.ucf/.bit)")
		seed     = flag.Int64("seed", 1, "random seed for placement")
		effort   = flag.Float64("effort", 1.0, "placer effort")
		starts   = flag.Int("starts", 1, "independently seeded placement starts; the best placement wins (deterministic for any worker count)")
		workers  = flag.Int("workers", 0, "worker pool width for multi-start placement (0 = all cores or $JPG_WORKERS)")
		trace    = flag.String("trace", "", "write a Chrome trace (chrome://tracing) of the run to this file")
		useCache = flag.Bool("cache", cache.EnvEnabled(), "memoize CAD stage results (content-addressed; default $JPG_CACHE/$JPG_CACHE_DIR)")
		cacheDir = flag.String("cache-dir", os.Getenv(cache.EnvDir), "persist the cache on disk under this directory (implies -cache)")
	)
	flag.Parse()
	ctx := context.Background()
	var col *obs.Collector
	if *trace != "" {
		col = obs.New()
		ctx = col.Attach(ctx)
	}
	if *useCache || *cacheDir != "" {
		ctx = cache.With(ctx, cache.New(cache.Options{Dir: *cacheDir, NoDisk: *cacheDir == ""}))
	}
	part, err := device.ByName(*partName)
	if err != nil {
		return err
	}
	opts := flow.Options{Seed: *seed, Effort: *effort, Starts: *starts, Workers: *workers}

	var a *flow.Artifacts
	switch {
	case *netPath != "":
		if *baseSpec != "" || *varSpec != "" {
			return fmt.Errorf("-netlist excludes -base/-variant")
		}
		text, err := os.ReadFile(*netPath)
		if err != nil {
			return err
		}
		nl, err := netlist.ParseText(string(text))
		if err != nil {
			return err
		}
		var cons *ucf.Constraints
		if *baseUCF != "" {
			ucfText, err := os.ReadFile(*baseUCF)
			if err != nil {
				return err
			}
			if cons, err = ucf.Parse(string(ucfText)); err != nil {
				return err
			}
		}
		if a, err = flow.Implement(ctx, part, nl, cons, opts); err != nil {
			return err
		}
	case *baseSpec != "" && *varSpec == "":
		insts, err := designs.ParseInstanceSpecs(*baseSpec)
		if err != nil {
			return err
		}
		base, err := flow.BuildBase(ctx, part, insts, opts)
		if err != nil {
			return err
		}
		a = &base.Artifacts
		for prefix, rg := range base.Regions {
			fmt.Printf("region %s -> columns %d..%d\n", prefix, rg.C1+1, rg.C2+1)
		}
	case *varSpec != "" && *baseSpec == "":
		if *baseUCF == "" {
			return fmt.Errorf("-variant requires -baseucf")
		}
		ucfText, err := os.ReadFile(*baseUCF)
		if err != nil {
			return err
		}
		cons, err := ucf.Parse(string(ucfText))
		if err != nil {
			return err
		}
		insts, err := designs.ParseInstanceSpecs(*varSpec)
		if err != nil {
			return err
		}
		if len(insts) != 1 {
			return fmt.Errorf("-variant wants exactly one instance")
		}
		a, err = flow.BuildVariantUCF(ctx, part, cons, insts[0].Prefix, insts[0].Gen, opts)
		if err != nil {
			return err
		}
	default:
		flag.Usage()
		return fmt.Errorf("exactly one of -base or -variant is required")
	}

	st := a.Netlist.Stats()
	fmt.Printf("design %q on %s: %d LUTs, %d FFs, %d nets\n",
		a.Netlist.Name, part.Name, st.LUTs, st.DFFs, st.Nets)
	fmt.Printf("times: %s\n", a.Times)
	fmt.Printf("utilization: %s\n", a.Phys.Utilization())
	if ta, err := timing.Analyze(a.Phys); err == nil {
		fmt.Print(ta.Report())
	}

	netText, err := netlist.EmitText(a.Netlist)
	if err != nil {
		return err
	}
	wrapped := bitfile.Wrap(bitfile.Header{
		Design: a.Netlist.Name + ".ncd",
		Part:   part.Name,
		Date:   time.Now().Format("2006/01/02"),
		Time:   time.Now().Format("15:04:05"),
	}, a.Bitstream)
	for suffix, data := range map[string][]byte{
		".ncd": a.NCD,
		".xdl": []byte(a.XDL),
		".ucf": []byte(a.UCF),
		".bit": wrapped,
		".net": []byte(netText),
	} {
		path := *outStem + suffix
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(data))
	}
	if col != nil {
		f, err := os.Create(*trace)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := col.WriteChromeTrace(f, "par"); err != nil {
			return err
		}
		fmt.Printf("wrote %s (Chrome trace, %d spans)\n", *trace, len(col.Spans()))
	}
	return nil
}
