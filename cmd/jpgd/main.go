// Command jpgd is the partial-bitstream generation service: the JPG tool
// and the CAD flow behind it, served over HTTP with the operational surface
// a deployment needs — structured JSON logs with per-request correlation
// IDs, Prometheus metrics on /metrics, health/readiness probes, a
// flight-recorder dump of recent spans and errors, and pprof.
//
// Usage:
//
//	jpgd [-addr :8080] [-log-level info] [-cache] [-cache-dir DIR]
//	     [-flightrec 1024] [-span-logs] [-drain 0s]
//	     [-max-inflight N] [-queue N] [-artifact-cache-mb MB]
//	     [-coalesce] [-request-timeout 0s]
//
// The serving pipeline (request coalescing, hot-artifact cache, admission
// control) defaults from JPGD_MAX_INFLIGHT, JPGD_QUEUE,
// JPGD_ARTIFACT_CACHE_MB, JPGD_COALESCE and JPGD_REQUEST_TIMEOUT; flags
// override the environment.
//
// The daemon drains gracefully on SIGINT/SIGTERM: /readyz flips to 503,
// -drain passes, and in-flight requests finish before the process exits.
//
// Endpoints: see internal/jpgd.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/jpgd"
	"repro/internal/obs/flightrec"
	jpglog "repro/internal/obs/log"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jpgd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn, error")
		useCache = flag.Bool("cache", cache.EnvEnabled(), "memoize CAD stages and partial generation across requests (default $JPG_CACHE/$JPG_CACHE_DIR)")
		cacheDir = flag.String("cache-dir", os.Getenv(cache.EnvDir), "persist the cache on disk under this directory (implies -cache)")
		frCap    = flag.Int("flightrec", flightrec.DefaultCapacity, "flight recorder capacity (recent spans kept)")
		spanLogs = flag.Bool("span-logs", false, "also log every completed span (debug level, high volume)")
		drain    = flag.Duration("drain", 0, "delay between failing readiness and starting shutdown")
	)
	env := jpgd.ServeOptionsFromEnv()
	var (
		maxInflight = flag.Int("max-inflight", env.MaxInflight,
			"max concurrently executing API requests (0 = 4x GOMAXPROCS, min 8; default $JPGD_MAX_INFLIGHT)")
		queue = flag.Int("queue", queueFlag(env.Queue),
			"max requests waiting for an execution slot (-1 = 4x max-inflight, 0 = shed immediately; default $JPGD_QUEUE)")
		artifactMB = flag.Int("artifact-cache-mb", artifactToFlag(env.ArtifactCacheBytes),
			"hot-artifact cache budget in MiB (0 disables; default $JPGD_ARTIFACT_CACHE_MB or 64)")
		coalesce = flag.Bool("coalesce", !env.NoCoalesce,
			"coalesce concurrent identical generate/build requests (default $JPGD_COALESCE)")
		reqTimeout = flag.Duration("request-timeout", env.RequestTimeout,
			"per-request deadline, 0 = none (default $JPGD_REQUEST_TIMEOUT)")
	)
	flag.Parse()

	level, err := jpglog.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	cfg := jpgd.Config{
		Logger:     jpglog.New(os.Stderr, level),
		Recorder:   flightrec.New(*frCap),
		LogSpans:   *spanLogs,
		DrainDelay: *drain,
		Serve: jpgd.ServeOptions{
			MaxInflight:        *maxInflight,
			Queue:              queueFlag(*queue),
			ArtifactCacheBytes: artifactFromFlag(*artifactMB),
			NoCoalesce:         !*coalesce,
			RequestTimeout:     *reqTimeout,
		},
	}
	if *useCache || *cacheDir != "" {
		cfg.Cache = cache.New(cache.Options{Dir: *cacheDir, NoDisk: *cacheDir == ""})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := jpgd.New(cfg)
	fmt.Printf("jpgd listening on %s\n", *addr)
	start := time.Now()
	err = srv.ListenAndServe(ctx, *addr)
	fmt.Printf("jpgd stopped after %v\n", time.Since(start).Round(time.Millisecond))
	return err
}

// The flag surface exposes the documented knobs (0 disables, -1 means auto)
// while ServeOptions encodes "disabled" as a negative; these helpers map
// between the conventions in both directions.

// queueFlag swaps 0 and -1 (its own inverse): the flag says "0 = shed
// immediately, -1 = auto", ServeOptions says "negative = no waiting, 0 =
// auto".
func queueFlag(q int) int {
	switch {
	case q < 0:
		return 0
	case q == 0:
		return -1
	}
	return q
}

func artifactToFlag(b int64) int {
	switch {
	case b < 0:
		return 0
	case b == 0:
		return 64
	}
	return int(b >> 20)
}

func artifactFromFlag(mb int) int64 {
	if mb <= 0 {
		return -1
	}
	return int64(mb) << 20
}
