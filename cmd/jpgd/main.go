// Command jpgd is the partial-bitstream generation service: the JPG tool
// and the CAD flow behind it, served over HTTP with the operational surface
// a deployment needs — structured JSON logs with per-request correlation
// IDs, Prometheus metrics on /metrics, health/readiness probes, a
// flight-recorder dump of recent spans and errors, and pprof.
//
// Usage:
//
//	jpgd [-addr :8080] [-log-level info] [-cache] [-cache-dir DIR]
//	     [-flightrec 1024] [-span-logs] [-drain 0s]
//
// The daemon drains gracefully on SIGINT/SIGTERM: /readyz flips to 503,
// -drain passes, and in-flight requests finish before the process exits.
//
// Endpoints: see internal/jpgd.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/jpgd"
	"repro/internal/obs/flightrec"
	jpglog "repro/internal/obs/log"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jpgd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn, error")
		useCache = flag.Bool("cache", cache.EnvEnabled(), "memoize CAD stages and partial generation across requests (default $JPG_CACHE/$JPG_CACHE_DIR)")
		cacheDir = flag.String("cache-dir", os.Getenv(cache.EnvDir), "persist the cache on disk under this directory (implies -cache)")
		frCap    = flag.Int("flightrec", flightrec.DefaultCapacity, "flight recorder capacity (recent spans kept)")
		spanLogs = flag.Bool("span-logs", false, "also log every completed span (debug level, high volume)")
		drain    = flag.Duration("drain", 0, "delay between failing readiness and starting shutdown")
	)
	flag.Parse()

	level, err := jpglog.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	cfg := jpgd.Config{
		Logger:     jpglog.New(os.Stderr, level),
		Recorder:   flightrec.New(*frCap),
		LogSpans:   *spanLogs,
		DrainDelay: *drain,
	}
	if *useCache || *cacheDir != "" {
		cfg.Cache = cache.New(cache.Options{Dir: *cacheDir, NoDisk: *cacheDir == ""})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := jpgd.New(cfg)
	fmt.Printf("jpgd listening on %s\n", *addr)
	start := time.Now()
	err = srv.ListenAndServe(ctx, *addr)
	fmt.Printf("jpgd stopped after %v\n", time.Since(start).Round(time.Millisecond))
	return err
}
