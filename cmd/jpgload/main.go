// Command jpgload is the load generator for the jpgd serving pipeline. It
// drives a live daemon over HTTP with a mixed hot/cold request schedule —
// hot requests repeat a small set of build bodies (exercising the artifact
// cache and request coalescing), cold requests are unique (forcing full flow
// executions) — and reports throughput, latency percentiles, cache/coalesce
// hit rates and shed counts as BENCH_serve.json.
//
// With no -addr it self-hosts: it boots a target daemon with the serving
// pipeline on and a baseline daemon with coalescing and the artifact cache
// off, runs the identical schedule against both, and reports the speedup.
// It also cross-checks byte identity: the same request answered by the
// baseline (cold), by the target under concurrency (coalesced), and by the
// target again (cached) must produce byte-identical bodies.
//
// Usage:
//
//	jpgload [-addr URL] [-baseline-addr URL] [-duration 5s] [-conns 32]
//	        [-hot 0.9] [-hotset 4] [-quick] [-json BENCH_serve.json]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jpgd"
	"repro/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jpgload:", err)
		os.Exit(1)
	}
}

type config struct {
	duration time.Duration
	conns    int
	hotFrac  float64
	hotSet   int
	seed     int64
}

func run() error {
	var (
		addr     = flag.String("addr", "", "target jpgd base URL (empty = self-host a daemon)")
		baseAddr = flag.String("baseline-addr", "", "baseline jpgd base URL for the speedup comparison (empty + self-host = boot one with coalescing and artifact cache off)")
		duration = flag.Duration("duration", 5*time.Second, "load duration per server")
		conns    = flag.Int("conns", 32, "concurrent client connections")
		hotFrac  = flag.Float64("hot", 0.9, "fraction of requests drawn from the hot set")
		hotSet   = flag.Int("hotset", 4, "number of distinct hot request bodies")
		seed     = flag.Int64("seed", 1, "schedule RNG seed")
		quick    = flag.Bool("quick", false, "short run for CI (2s, 16 conns)")
		jsonOut  = flag.String("json", "", "write the report to this file as JSON")
	)
	flag.Parse()

	cfg := config{duration: *duration, conns: *conns, hotFrac: *hotFrac, hotSet: *hotSet, seed: *seed}
	if *quick {
		cfg.duration = 2 * time.Second
		cfg.conns = 16
	}
	if cfg.hotSet < 1 {
		cfg.hotSet = 1
	}

	targetURL, baselineURL := *addr, *baseAddr
	var shutdowns []func()
	defer func() {
		for _, f := range shutdowns {
			f()
		}
	}()
	if targetURL == "" {
		url, stop, err := selfHost(jpgd.ServeOptions{})
		if err != nil {
			return err
		}
		shutdowns = append(shutdowns, stop)
		targetURL = url
		if baselineURL == "" {
			url, stop, err := selfHost(jpgd.ServeOptions{NoCoalesce: true, ArtifactCacheBytes: -1})
			if err != nil {
				return err
			}
			shutdowns = append(shutdowns, stop)
			baselineURL = url
		}
	}
	for _, u := range []string{targetURL, baselineURL} {
		if u == "" {
			continue
		}
		if err := waitReady(u); err != nil {
			return err
		}
	}

	rep := report{
		Schema:   "jpgload/v1",
		Quick:    *quick,
		Workload: "/v1/build XCV50 counter+lfsr",
		Config: reportConfig{
			DurationS: cfg.duration.Seconds(),
			Conns:     cfg.conns,
			HotFrac:   cfg.hotFrac,
			HotSet:    cfg.hotSet,
		},
	}

	// Warm each daemon's flow cache with the hot set once so the comparison
	// measures the serving layer, not first-touch compilation.
	fmt.Fprintf(os.Stderr, "jpgload: target %s\n", targetURL)
	warm(targetURL, cfg)
	rep.Target = drive(targetURL, cfg)
	if baselineURL != "" {
		fmt.Fprintf(os.Stderr, "jpgload: baseline %s\n", baselineURL)
		warm(baselineURL, cfg)
		b := drive(baselineURL, cfg)
		rep.Baseline = &b
		if b.RPS > 0 {
			rep.SpeedupRPS = round2(rep.Target.RPS / b.RPS)
		}
	}

	ident, err := byteIdentity(targetURL, baselineURL, cfg)
	if err != nil {
		return fmt.Errorf("byte-identity check: %w", err)
	}
	rep.ByteIdentical = ident

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if *jsonOut != "" {
		if err := os.WriteFile(*jsonOut, out, 0o644); err != nil {
			return err
		}
	}
	os.Stdout.Write(out)
	if !ident {
		return fmt.Errorf("responses are NOT byte-identical across serving paths")
	}
	return nil
}

// selfHost boots an in-process jpgd on a loopback port and returns its base
// URL and a shutdown func.
func selfHost(opts jpgd.ServeOptions) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := jpgd.New(jpgd.Config{Registry: obs.NewRegistry(), Serve: opts})
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), stop, nil
}

func waitReady(base string) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s not ready after 30s", base)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// buildBody returns the /v1/build request for one schedule slot. Hot slots
// reuse seeds [0,hotSet); cold slots get unique seeds, forcing a fresh CAD
// run per request.
func buildBody(seed int64) []byte {
	body, _ := json.Marshal(map[string]any{
		"part":      "XCV50",
		"instances": "u1/=counter:bits=4;u2/=lfsr:bits=4",
		"seed":      seed,
		"variant":   map[string]any{"prefix": "u1/", "gen": "lfsr:bits=4", "seed": seed + 1},
	})
	return body
}

func warm(base string, cfg config) {
	for i := 0; i < cfg.hotSet; i++ {
		resp, err := http.Post(base+"/v1/build", "application/json", bytes.NewReader(buildBody(int64(i))))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
}

type sample struct {
	latency time.Duration
	status  int
	xcache  string
	hot     bool
}

// drive runs the mixed schedule against one daemon and aggregates the stats.
func drive(base string, cfg config) runStats {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.conns * 2,
		MaxIdleConnsPerHost: cfg.conns * 2,
	}}
	var (
		mu      sync.Mutex
		samples []sample
		coldSeq atomic.Int64
	)
	coldSeq.Store(1 << 20)

	stopAt := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
			local := make([]sample, 0, 1024)
			for time.Now().Before(stopAt) {
				hot := rng.Float64() < cfg.hotFrac
				var seed int64
				if hot {
					seed = int64(rng.Intn(cfg.hotSet))
				} else {
					seed = coldSeq.Add(1)
				}
				s := sample{hot: hot}
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/build", "application/json", bytes.NewReader(buildBody(seed)))
				if err != nil {
					s.status = -1
				} else {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					s.status = resp.StatusCode
					s.xcache = resp.Header.Get("X-Cache")
				}
				s.latency = time.Since(t0)
				local = append(local, s)
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return summarize(samples, cfg.duration)
}

type classStats struct {
	Requests int   `json:"requests"`
	P50US    int64 `json:"p50_us"`
	P95US    int64 `json:"p95_us"`
	P99US    int64 `json:"p99_us"`
}

type runStats struct {
	Requests int            `json:"requests"`
	Errors   int            `json:"errors"`
	Shed     int            `json:"shed"`
	RPS      float64        `json:"rps"`
	P50US    int64          `json:"p50_us"`
	P95US    int64          `json:"p95_us"`
	P99US    int64          `json:"p99_us"`
	Hot      classStats     `json:"hot"`
	Cold     classStats     `json:"cold"`
	XCache   map[string]int `json:"xcache"`
	HitRate  float64        `json:"hot_hit_rate"`
}

func summarize(samples []sample, d time.Duration) runStats {
	st := runStats{XCache: map[string]int{}}
	var all, hot, cold []time.Duration
	hotServedWarm := 0
	for _, s := range samples {
		st.Requests++
		switch {
		case s.status == -1 || s.status >= 500 && s.status != http.StatusServiceUnavailable:
			st.Errors++
		case s.status == http.StatusTooManyRequests || s.status == http.StatusServiceUnavailable:
			st.Shed++
		}
		if s.xcache != "" {
			st.XCache[s.xcache]++
		}
		if s.status == http.StatusOK {
			all = append(all, s.latency)
			if s.hot {
				hot = append(hot, s.latency)
				if s.xcache == "hit" || s.xcache == "coalesced" {
					hotServedWarm++
				}
			} else {
				cold = append(cold, s.latency)
			}
		}
	}
	st.RPS = round2(float64(st.Requests-st.Errors-st.Shed) / d.Seconds())
	st.P50US, st.P95US, st.P99US = percentiles(all)
	st.Hot = class(hot)
	st.Cold = class(cold)
	if len(hot) > 0 {
		st.HitRate = round2(float64(hotServedWarm) / float64(len(hot)))
	}
	return st
}

func class(lat []time.Duration) classStats {
	p50, p95, p99 := percentiles(lat)
	return classStats{Requests: len(lat), P50US: p50, P95US: p95, P99US: p99}
}

func percentiles(lat []time.Duration) (p50, p95, p99 int64) {
	if len(lat) == 0 {
		return 0, 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	at := func(q float64) int64 {
		i := int(q * float64(len(lat)-1))
		return lat[i].Microseconds()
	}
	return at(0.50), at(0.95), at(0.99)
}

// byteIdentity answers whether the cold, coalesced and cached serving paths
// of the target daemon produce byte-identical bodies for the same request:
// the first request of a concurrent burst executes the flow (cold leader),
// the rest coalesce onto it, and a repeat is served from the artifact cache.
// The baseline daemon's answer is a separate execution, so its stage-time
// fields legitimately differ; it is compared with timings masked to confirm
// the serving pipeline does not alter results.
func byteIdentity(targetURL, baselineURL string, cfg config) (bool, error) {
	body := buildBody(7 << 20) // a seed no schedule slot uses
	fetch := func(base string) ([]byte, string, error) {
		resp, err := http.Post(base+"/v1/build", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, "", err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, "", fmt.Errorf("status %d: %s", resp.StatusCode, b)
		}
		return b, resp.Header.Get("X-Cache"), nil
	}

	// Concurrent burst against the target: one leader executes (the cold
	// path), the rest coalesce (or hit the artifact the leader stored).
	const burst = 8
	bodies := make([][]byte, burst)
	errs := make([]error, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bodies[i], _, errs[i] = fetch(targetURL)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return false, err
		}
	}
	reference := bodies[0]
	for _, b := range bodies {
		if !bytes.Equal(b, reference) {
			return false, nil
		}
	}
	// The cached repeat.
	cached, xc, err := fetch(targetURL)
	if err != nil {
		return false, err
	}
	if xc != "hit" && xc != "" {
		fmt.Fprintf(os.Stderr, "jpgload: note: repeat request X-Cache=%q (artifact cache off?)\n", xc)
	}
	if !bytes.Equal(cached, reference) {
		return false, nil
	}
	// Cross-check the result against an independent execution on the
	// baseline, ignoring the per-run stage-time measurements.
	if baselineURL != "" {
		b, _, err := fetch(baselineURL)
		if err != nil {
			return false, err
		}
		same, err := equalIgnoringTimes(b, reference)
		if err != nil || !same {
			return false, err
		}
	}
	return true, nil
}

// equalIgnoringTimes compares two /v1/build response bodies with the
// stage-time measurement fields (the only legitimately run-dependent part of
// a response) masked out.
func equalIgnoringTimes(a, b []byte) (bool, error) {
	mask := func(raw []byte) (any, error) {
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, err
		}
		delete(m, "base_times")
		if v, ok := m["variant"].(map[string]any); ok {
			delete(v, "times")
		}
		return m, nil
	}
	ma, err := mask(a)
	if err != nil {
		return false, err
	}
	mb, err := mask(b)
	if err != nil {
		return false, err
	}
	ja, _ := json.Marshal(ma)
	jb, _ := json.Marshal(mb)
	return bytes.Equal(ja, jb), nil
}

type reportConfig struct {
	DurationS float64 `json:"duration_s"`
	Conns     int     `json:"conns"`
	HotFrac   float64 `json:"hot_fraction"`
	HotSet    int     `json:"hot_set"`
}

type report struct {
	Schema        string       `json:"schema"`
	Quick         bool         `json:"quick"`
	Workload      string       `json:"workload"`
	Config        reportConfig `json:"config"`
	Target        runStats     `json:"target"`
	Baseline      *runStats    `json:"baseline,omitempty"`
	SpeedupRPS    float64      `json:"speedup_rps,omitempty"`
	ByteIdentical bool         `json:"byte_identical"`
}

func round2(f float64) float64 { return float64(int64(f*100+0.5)) / 100 }
