// Command jbitsdiff is the JBitsDiff baseline (James-Roxby & Guccione): it
// diffs two complete bitstreams and packages the differing frames as a
// partial bitstream ("core").
//
// Usage:
//
//	jbitsdiff -ref base.bit -new with_core.bit -o core.bit
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bitfile"
	"repro/internal/jbitsdiff"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jbitsdiff:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		refPath = flag.String("ref", "", "reference complete bitstream (required)")
		newPath = flag.String("new", "", "complete bitstream containing the core (required)")
		outPath = flag.String("o", "core.bit", "output core bitstream")
	)
	flag.Parse()
	if *refPath == "" || *newPath == "" {
		flag.Usage()
		return fmt.Errorf("-ref and -new are required")
	}
	refFile, err := os.ReadFile(*refPath)
	if err != nil {
		return err
	}
	ref, _, err := bitfile.Unwrap(refFile)
	if err != nil {
		return err
	}
	newFile, err := os.ReadFile(*newPath)
	if err != nil {
		return err
	}
	withCore, _, err := bitfile.Unwrap(newFile)
	if err != nil {
		return err
	}
	core, err := jbitsdiff.Extract(ref, withCore)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, core.Bitstream, 0o644); err != nil {
		return err
	}
	fmt.Printf("core: %d differing frames on %s, %d bytes -> %s\n",
		len(core.FARs), core.Part.Name, len(core.Bitstream), *outPath)
	return nil
}
