// Command bitgen converts a placed-and-routed design database (NCD) into a
// complete bitstream, the role the Xilinx bitgen tool plays at the end of
// the conventional flow.
//
// Usage:
//
//	bitgen -ncd design.ncd -o design.bit
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bitfile"
	"repro/internal/bitgen"
	"repro/internal/ncd"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bitgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		ncdPath = flag.String("ncd", "", "placed-and-routed NCD file (required)")
		outPath = flag.String("o", "design.bit", "output bitstream")
	)
	flag.Parse()
	if *ncdPath == "" {
		flag.Usage()
		return fmt.Errorf("-ncd is required")
	}
	data, err := os.ReadFile(*ncdPath)
	if err != nil {
		return err
	}
	design, err := ncd.Unmarshal(data)
	if err != nil {
		return err
	}
	bs, err := bitgen.FullBitstream(design)
	if err != nil {
		return err
	}
	wrapped := bitfile.Wrap(bitfile.Header{
		Design: *ncdPath,
		Part:   design.Part.Name,
		Date:   time.Now().Format("2006/01/02"),
		Time:   time.Now().Format("15:04:05"),
	}, bs)
	if err := os.WriteFile(*outPath, wrapped, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes, %s)\n", *outPath, len(bs), design.Part.Name)
	return nil
}
