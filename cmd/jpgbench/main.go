// Command jpgbench regenerates the paper's evaluation: each experiment
// (E1..E6, see DESIGN.md) prints the table reproducing one claim from
// §2.1/§4.1/Figure 4 of the paper.
//
// Usage:
//
//	jpgbench                 # run everything at full scale
//	jpgbench -exp e1,e5      # selected experiments
//	jpgbench -quick          # shrunken sweeps (seconds instead of minutes)
//	jpgbench -part XCV100    # device for the CAD-heavy experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

var all = []struct {
	id  string
	run func(experiments.Config) (*experiments.Table, error)
}{
	{"e1", experiments.E1},
	{"e2", experiments.E2},
	{"e3", experiments.E3},
	{"e4", experiments.E4},
	{"e5", experiments.E5},
	{"e6", experiments.E6},
	{"e7", experiments.E7},
	{"e8", experiments.E8},
	{"e9", experiments.E9},
}

func main() {
	var (
		expList = flag.String("exp", "all", "comma-separated experiments (e1..e9) or 'all'")
		quick   = flag.Bool("quick", false, "shrink sweeps for a fast run")
		part    = flag.String("part", "XCV50", "device for CAD-heavy experiments")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	cfg := experiments.Config{Part: *part, Seed: *seed, Quick: *quick}

	want := map[string]bool{}
	for _, e := range strings.Split(*expList, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	failed := false
	for _, exp := range all {
		if !want["all"] && !want[exp.id] {
			continue
		}
		t0 := time.Now()
		tab, err := exp.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", exp.id, err)
			failed = true
			continue
		}
		fmt.Print(tab.Render())
		fmt.Printf("(%s ran in %v)\n\n", strings.ToUpper(exp.id), time.Since(t0).Round(time.Millisecond))
		for _, n := range tab.Notes {
			if strings.Contains(n, "VERDICT: FAIL") {
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
