// Command jpgbench regenerates the paper's evaluation: each experiment
// (E1..E9, see DESIGN.md) prints the table reproducing one claim from
// §2.1/§4.1/Figure 4 of the paper.
//
// Usage:
//
//	jpgbench                 # run everything at full scale, all cores
//	jpgbench -exp e1,e5      # selected experiments
//	jpgbench -quick          # shrunken sweeps (seconds instead of minutes)
//	jpgbench -part XCV100    # device for the CAD-heavy experiments
//	jpgbench -workers 1      # strictly serial CAD runs (results identical)
//	jpgbench -json out.json  # also time each experiment serial vs parallel
//	                         # and write a perf record (BENCH_parallel.json)
//	jpgbench -trace t.json   # write a Chrome trace (chrome://tracing) of the
//	                         # pooled runs: per-stage spans on per-worker lanes
//	jpgbench -metrics        # print the metrics registry snapshot after the run
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/parallel"
)

var all = []struct {
	id  string
	run func(experiments.Config) (*experiments.Table, error)
}{
	{"e1", experiments.E1},
	{"e2", experiments.E2},
	{"e3", experiments.E3},
	{"e4", experiments.E4},
	{"e5", experiments.E5},
	{"e6", experiments.E6},
	{"e7", experiments.E7},
	{"e8", experiments.E8},
	{"e9", experiments.E9},
}

// perfRecord is the schema of the -json output: wall-clock of each selected
// experiment run serially (Workers=1) and through the worker pool, so PRs
// that touch the execution layer have a trajectory to compare against. The
// record is self-describing: Version is the schema version (bumped on
// incompatible change; see obs.ExportVersion) and Metrics snapshots the
// process-wide registry after the pooled runs.
type perfRecord struct {
	Version     int              `json:"version"`
	Tool        string           `json:"tool"`
	Part        string           `json:"part"`
	Seed        int64            `json:"seed"`
	Quick       bool             `json:"quick"`
	NumCPU      int              `json:"num_cpu"`
	Workers     int              `json:"workers"`
	Experiments []perfExperiment `json:"experiments"`
	Metrics     obs.Snapshot     `json:"metrics"`
}

type perfExperiment struct {
	ID              string  `json:"id"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
}

func main() {
	var (
		expList  = flag.String("exp", "all", "comma-separated experiments (e1..e9) or 'all'")
		quick    = flag.Bool("quick", false, "shrink sweeps for a fast run")
		part     = flag.String("part", "XCV50", "device for CAD-heavy experiments")
		seed     = flag.Int64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "worker pool width for independent CAD runs (0 = all cores, or $JPG_WORKERS)")
		jsonPath = flag.String("json", "", "write a serial-vs-parallel perf record to this file")
		tracePth = flag.String("trace", "", "write a Chrome trace (chrome://tracing / Perfetto) of the pooled runs to this file")
		metrics  = flag.Bool("metrics", false, "print the metrics registry snapshot and per-stage span summary after the run")
	)
	flag.Parse()
	cfg := experiments.Config{Part: *part, Seed: *seed, Quick: *quick, Workers: *workers}
	// Tracing observes only the pooled runs (the serial -json reruns stay
	// untraced so the trace reflects one configuration); results are
	// byte-identical with tracing on or off.
	var col *obs.Collector
	if *tracePth != "" || *metrics {
		col = obs.New()
		cfg.Ctx = col.Attach(context.Background())
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expList, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	record := perfRecord{
		Tool: "jpgbench", Part: *part, Seed: *seed, Quick: *quick,
		NumCPU: runtime.NumCPU(), Workers: *workers,
	}
	if record.Workers == 0 {
		record.Workers = parallel.DefaultWorkers()
	}
	failed := false
	for _, exp := range all {
		if !want["all"] && !want[exp.id] {
			continue
		}
		// With -json, time a strictly serial run first; results are
		// byte-identical (only wall-clock changes), so only the pooled
		// run's table is printed.
		var serial time.Duration
		if *jsonPath != "" {
			serialCfg := cfg
			serialCfg.Workers = 1
			serialCfg.Ctx = nil // keep the serial rerun out of the trace
			t0 := time.Now()
			if _, err := exp.run(serialCfg); err != nil {
				fmt.Fprintf(os.Stderr, "%s (serial): %v\n", exp.id, err)
				failed = true
				continue
			}
			serial = time.Since(t0)
		}
		t0 := time.Now()
		tab, err := exp.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", exp.id, err)
			failed = true
			continue
		}
		elapsed := time.Since(t0)
		fmt.Print(tab.Render())
		fmt.Printf("(%s ran in %v)\n\n", strings.ToUpper(exp.id), elapsed.Round(time.Millisecond))
		for _, n := range tab.Notes {
			if strings.Contains(n, "VERDICT: FAIL") {
				failed = true
			}
		}
		if *jsonPath != "" {
			record.Experiments = append(record.Experiments, perfExperiment{
				ID:              exp.id,
				SerialSeconds:   serial.Seconds(),
				ParallelSeconds: elapsed.Seconds(),
				Speedup:         serial.Seconds() / elapsed.Seconds(),
			})
		}
	}
	record.Version = obs.ExportVersion
	record.Metrics = obs.Default.Snapshot()
	if *tracePth != "" {
		f, err := os.Create(*tracePth)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		err = col.WriteChromeTrace(f, "jpgbench")
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (%d spans; open in chrome://tracing or ui.perfetto.dev)\n",
			*tracePth, len(col.Spans()))
	}
	if *metrics {
		fmt.Println("== per-stage span summary ==")
		fmt.Print(col.StageSummary())
		fmt.Println("== metrics snapshot ==")
		fmt.Print(record.Metrics.Render())
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(record, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "perf record: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "perf record: %v\n", err)
			os.Exit(1)
		}
		for _, e := range record.Experiments {
			fmt.Printf("perf %s: serial %.3fs, %d workers %.3fs (%.2fx)\n",
				e.ID, e.SerialSeconds, record.Workers, e.ParallelSeconds, e.Speedup)
		}
		fmt.Printf("perf record written to %s\n", *jsonPath)
	}
	if failed {
		os.Exit(1)
	}
}
