// Command jpgbench regenerates the paper's evaluation: each experiment
// (E1..E9, see DESIGN.md) prints the table reproducing one claim from
// §2.1/§4.1/Figure 4 of the paper.
//
// Usage:
//
//	jpgbench                 # run everything at full scale, all cores
//	jpgbench -exp e1,e5      # selected experiments
//	jpgbench -quick          # shrunken sweeps (seconds instead of minutes)
//	jpgbench -part XCV100    # device for the CAD-heavy experiments
//	jpgbench -workers 1      # strictly serial CAD runs (results identical)
//	jpgbench -starts 4       # multi-start placement: 4 seeded anneals per CAD
//	                         # run, best placement wins (deterministic for any
//	                         # worker count)
//	jpgbench -json out.json  # also time each experiment serial vs parallel
//	                         # and write a perf record (BENCH_parallel.json)
//	jpgbench -trace t.json   # write a Chrome trace (chrome://tracing) of the
//	                         # pooled runs: per-stage spans on per-worker lanes
//	jpgbench -metrics        # print the metrics registry snapshot after the run
//	jpgbench -cache          # memoize CAD stages (content-addressed; results
//	                         # are byte-identical, only wall-clock changes)
//	jpgbench -cache-dir d    # persist the cache on disk under d
//	jpgbench -faults spec    # inject deterministic download faults (or
//	                         # $JPG_FAULTS); boards gain a retrying,
//	                         # verifying reliability layer, results identical
//	jpgbench -retries n      # bound download attempts per board download
//	jpgbench -download-timeout d  # deadline per download incl. retries
//	jpgbench -verify         # re-decode every emitted bitstream with the
//	                         # independent verifier (internal/bitlint) and fail
//	                         # on any error finding (results identical)
//	jpgbench -incremental    # also run the E10 edit storm (delta-driven
//	                         # incremental flow); with -json the edit->partial
//	                         # stats land in the record for CI's gate
//	jpgbench -cpuprofile f   # write a pprof CPU profile of the run
//	jpgbench -memprofile f   # write a pprof heap profile at exit
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/parallel"
)

var all = []struct {
	id  string
	run func(experiments.Config) (*experiments.Table, error)
}{
	{"e1", experiments.E1},
	{"e2", experiments.E2},
	{"e3", experiments.E3},
	{"e4", experiments.E4},
	{"e5", experiments.E5},
	{"e6", experiments.E6},
	{"e7", experiments.E7},
	{"e8", experiments.E8},
	{"e9", experiments.E9},
}

// perfRecord is the schema of the -json output: wall-clock of each selected
// experiment run serially (Workers=1) and through the worker pool, so PRs
// that touch the execution layer have a trajectory to compare against. The
// record is self-describing: Version is the schema version (bumped on
// incompatible change; see obs.ExportVersion) and Metrics snapshots the
// process-wide registry after the pooled runs — since version 4 each
// histogram carries derived p50/p95/p99 upper-bound estimates, so the
// record captures tail latency, not just mean and count.
type perfRecord struct {
	Version int    `json:"version"`
	Tool    string `json:"tool"`
	Part    string `json:"part"`
	Seed    int64  `json:"seed"`
	Quick   bool   `json:"quick"`
	NumCPU  int    `json:"num_cpu"`
	// RequestedWorkers is the raw -workers flag (0 = auto); Workers is the
	// pool width it resolved to (all cores, or $JPG_WORKERS). Recording both
	// makes a null speedup diagnosable: a pooled run that was accidentally
	// serial shows requested 0 resolved to 1.
	RequestedWorkers int `json:"requested_workers"`
	Workers          int `json:"workers"`
	// RequestedStarts is the -starts flag: annealing starts per placement
	// (0 = single-start).
	RequestedStarts int              `json:"requested_starts,omitempty"`
	Experiments     []perfExperiment `json:"experiments"`
	// Cache summarises the build cache after the runs (nil when -cache is
	// off): bounds, per-stage hits/misses and hit rates.
	Cache *cacheRecord `json:"cache,omitempty"`
	// Incremental carries the E10 edit-storm stats (-incremental), the
	// record CI's regression gate compares against its committed baseline.
	Incremental *experiments.EditStormStats `json:"incremental,omitempty"`
	Metrics     obs.Snapshot                `json:"metrics"`
}

type perfExperiment struct {
	ID            string  `json:"id"`
	SerialSeconds float64 `json:"serial_seconds"`
	// ParallelSeconds times the pooled run with a cold cache (or no cache).
	ParallelSeconds float64 `json:"parallel_seconds"`
	// Speedup is serial/parallel; null when no parallelism is possible
	// (workers <= 1 or a single-CPU host), where the "parallel" run is just
	// a second serial run and the ratio would be measurement noise.
	Speedup *float64 `json:"speedup"`
	// WarmSeconds/WarmSpeedup time a cache-warm rerun of the pooled
	// configuration (only with -cache); WarmSpeedup is cold/warm.
	WarmSeconds *float64 `json:"warm_seconds,omitempty"`
	WarmSpeedup *float64 `json:"warm_speedup,omitempty"`
	// Stages breaks the pooled run down by CAD stage: seconds spent inside
	// map, place, route and bitgen summed over every CAD run of the
	// experiment (all workers), and each stage's fraction of that total.
	// Fractions are wall-clock-independent-ish — a stage whose share grows
	// got slower relative to the others — which is what CI's stage-time
	// regression gate compares against the committed baseline.
	Stages map[string]stageSeconds `json:"stages,omitempty"`
	Note   string                  `json:"note,omitempty"`
}

// stageSeconds is one CAD stage's share of an experiment's pooled run.
type stageSeconds struct {
	Seconds  float64 `json:"seconds"`
	Fraction float64 `json:"fraction"`
}

// cadStages maps breakdown names to the flow's per-stage duration
// histograms (see internal/flow).
var cadStages = []struct{ name, hist string }{
	{"map", "flow.map_ns"},
	{"place", "flow.place_ns"},
	{"route", "flow.route_ns"},
	{"bitgen", "flow.bitgen_ns"},
}

// stageSums reads the running nanosecond totals of the per-stage duration
// histograms; the delta across a region is the stage time it spent.
func stageSums() map[string]int64 {
	m := make(map[string]int64, len(cadStages))
	for _, s := range cadStages {
		m[s.name] = obs.GetHistogram(s.hist).Sum()
	}
	return m
}

// stageBreakdown converts before/after histogram sums into the per-stage
// seconds and fractions of one pooled run (nil if no stage ran).
func stageBreakdown(before, after map[string]int64) map[string]stageSeconds {
	var total float64
	for _, s := range cadStages {
		total += float64(after[s.name] - before[s.name])
	}
	if total <= 0 {
		return nil
	}
	out := make(map[string]stageSeconds, len(cadStages))
	for _, s := range cadStages {
		ns := float64(after[s.name] - before[s.name])
		out[s.name] = stageSeconds{Seconds: ns / 1e9, Fraction: ns / total}
	}
	return out
}

// cacheRecord is the -json view of cache.Stats.
type cacheRecord struct {
	Enabled   bool                  `json:"enabled"`
	Dir       string                `json:"dir,omitempty"`
	Entries   int                   `json:"entries"`
	Bytes     int64                 `json:"bytes"`
	Evictions int64                 `json:"evictions"`
	Stages    map[string]cacheStage `json:"stages,omitempty"`
}

type cacheStage struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

func newCacheRecord(c *cache.Cache) *cacheRecord {
	st := c.Stats()
	rec := &cacheRecord{
		Enabled: true, Dir: c.Dir(),
		Entries: st.Entries, Bytes: st.Bytes, Evictions: st.Evictions,
	}
	if len(st.Stages) > 0 {
		rec.Stages = make(map[string]cacheStage, len(st.Stages))
		for name, s := range st.Stages {
			rec.Stages[name] = cacheStage{Hits: s.Hits, Misses: s.Misses, HitRate: s.HitRate()}
		}
	}
	return rec
}

func main() { os.Exit(run()) }

// run is main behind an exit code, so deferred profile writers run before
// the process exits.
func run() int {
	var (
		expList  = flag.String("exp", "all", "comma-separated experiments (e1..e9) or 'all'")
		quick    = flag.Bool("quick", false, "shrink sweeps for a fast run")
		part     = flag.String("part", "XCV50", "device for CAD-heavy experiments")
		seed     = flag.Int64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "worker pool width for independent CAD runs (0 = all cores, or $JPG_WORKERS)")
		starts   = flag.Int("starts", 0, "annealing starts per placement; the best placement wins (0/1 = single start)")
		jsonPath = flag.String("json", "", "write a serial-vs-parallel perf record to this file")
		tracePth = flag.String("trace", "", "write a Chrome trace (chrome://tracing / Perfetto) of the pooled runs to this file")
		metrics  = flag.Bool("metrics", false, "print the metrics registry snapshot and per-stage span summary after the run")
		useCache = flag.Bool("cache", cache.EnvEnabled(), "memoize CAD stage results (content-addressed; default $JPG_CACHE/$JPG_CACHE_DIR)")
		cacheDir = flag.String("cache-dir", os.Getenv(cache.EnvDir), "persist the cache on disk under this directory (implies -cache)")
		faultStr = flag.String("faults", os.Getenv(faults.Env), "inject deterministic download faults into every experiment board (e.g. \"nth=2,mode=error,seed=7\"; default $JPG_FAULTS)")
		retries  = flag.Int("retries", 0, "max download attempts per board download (0 = xhwif default; the reliability layer is on whenever -faults/-retries/-download-timeout is set)")
		dlTmout  = flag.Duration("download-timeout", 0, "deadline for one board download including retries")
		incr     = flag.Bool("incremental", false, "also run the E10 edit storm (delta-driven incremental flow)")
		verify   = flag.Bool("verify", false, "independently verify every emitted bitstream (internal/bitlint); results identical, runs fail on any error finding")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()
	if _, err := faults.Parse(*faultStr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("cpu profile written to %s\n", *cpuProf)
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC() // flush garbage so the heap profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			f.Close()
			fmt.Printf("heap profile written to %s\n", *memProf)
		}()
	}
	cfg := experiments.Config{
		Part: *part, Seed: *seed, Quick: *quick, Workers: *workers, Starts: *starts,
		Verify: *verify,
		Faults: *faultStr, Retries: *retries, DownloadTimeout: *dlTmout,
	}
	var bcache *cache.Cache
	if *useCache || *cacheDir != "" {
		bcache = cache.New(cache.Options{Dir: *cacheDir, NoDisk: *cacheDir == ""})
		cfg.Cache = bcache
	}
	// Tracing observes only the pooled runs (the serial -json reruns stay
	// untraced so the trace reflects one configuration); results are
	// byte-identical with tracing on or off.
	var col *obs.Collector
	if *tracePth != "" || *metrics {
		col = obs.New()
		cfg.Ctx = col.Attach(context.Background())
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expList, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	record := perfRecord{
		Tool: "jpgbench", Part: *part, Seed: *seed, Quick: *quick,
		NumCPU: runtime.NumCPU(), RequestedWorkers: *workers, Workers: *workers,
		RequestedStarts: *starts,
	}
	if record.Workers == 0 {
		record.Workers = parallel.DefaultWorkers()
	}
	failed := false
	for _, exp := range all {
		if !want["all"] && !want[exp.id] {
			continue
		}
		// With -json, time a strictly serial run first; results are
		// byte-identical (only wall-clock changes), so only the pooled
		// run's table is printed. The serial rerun is uncached so it stays
		// a true baseline.
		var serial time.Duration
		if *jsonPath != "" {
			serialCfg := cfg
			serialCfg.Workers = 1
			serialCfg.Ctx = nil   // keep the serial rerun out of the trace
			serialCfg.Cache = nil // and out of the cache
			t0 := time.Now()
			if _, err := exp.run(serialCfg); err != nil {
				fmt.Fprintf(os.Stderr, "%s (serial): %v\n", exp.id, err)
				failed = true
				continue
			}
			serial = time.Since(t0)
		}
		stagesBefore := stageSums()
		t0 := time.Now()
		tab, err := exp.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", exp.id, err)
			failed = true
			continue
		}
		elapsed := time.Since(t0)
		stagesAfter := stageSums()
		fmt.Print(tab.Render())
		fmt.Printf("(%s ran in %v)\n\n", strings.ToUpper(exp.id), elapsed.Round(time.Millisecond))
		for _, n := range tab.Notes {
			if strings.Contains(n, "VERDICT: FAIL") {
				failed = true
			}
		}
		if *jsonPath != "" {
			pe := perfExperiment{
				ID:              exp.id,
				SerialSeconds:   serial.Seconds(),
				ParallelSeconds: elapsed.Seconds(),
				Stages:          stageBreakdown(stagesBefore, stagesAfter),
			}
			switch {
			case record.Workers <= 1:
				pe.Note = "workers <= 1: the pooled run is a second serial run, speedup would be noise"
			case record.NumCPU <= 1:
				pe.Note = "single-CPU host: no parallel speedup is possible"
			default:
				s := serial.Seconds() / elapsed.Seconds()
				pe.Speedup = &s
			}
			// With the cache populated by the run above, time a warm rerun
			// of the same pooled configuration.
			if bcache != nil {
				t0 = time.Now()
				if _, err := exp.run(cfg); err != nil {
					fmt.Fprintf(os.Stderr, "%s (warm): %v\n", exp.id, err)
					failed = true
					continue
				}
				warm := time.Since(t0).Seconds()
				ratio := elapsed.Seconds() / warm
				pe.WarmSeconds = &warm
				pe.WarmSpeedup = &ratio
			}
			record.Experiments = append(record.Experiments, pe)
		}
	}
	if *incr {
		t0 := time.Now()
		tab, stats, err := experiments.EditStorm(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "e10: %v\n", err)
			failed = true
		} else {
			fmt.Print(tab.Render())
			fmt.Printf("(E10 ran in %v)\n\n", time.Since(t0).Round(time.Millisecond))
			for _, n := range tab.Notes {
				if strings.Contains(n, "VERDICT: FAIL") {
					failed = true
				}
			}
			record.Incremental = stats
		}
	}
	if *faultStr != "" {
		fmt.Printf("fault injection %q: injected %d of %d download attempts; %d retries, %d rollbacks, %d aborts, %d verify failures\n",
			*faultStr,
			obs.GetCounter("faults.injected").Value(),
			obs.GetCounter("faults.download_attempts").Value(),
			obs.GetCounter("xhwif.retries").Value(),
			obs.GetCounter("xhwif.rollbacks").Value(),
			obs.GetCounter("xhwif.download_aborts").Value(),
			obs.GetCounter("xhwif.verify_failures").Value())
	}
	record.Version = obs.ExportVersion
	if bcache != nil {
		record.Cache = newCacheRecord(bcache)
	}
	record.Metrics = obs.Default.Snapshot()
	if *tracePth != "" {
		f, err := os.Create(*tracePth)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			return 1
		}
		err = col.WriteChromeTrace(f, "jpgbench")
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			return 1
		}
		fmt.Printf("trace written to %s (%d spans; open in chrome://tracing or ui.perfetto.dev)\n",
			*tracePth, len(col.Spans()))
	}
	if *metrics {
		fmt.Println("== per-stage span summary ==")
		fmt.Print(col.StageSummary())
		fmt.Println("== metrics snapshot ==")
		fmt.Print(record.Metrics.Render())
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(record, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "perf record: %v\n", err)
			return 1
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "perf record: %v\n", err)
			return 1
		}
		for _, e := range record.Experiments {
			line := fmt.Sprintf("perf %s: serial %.3fs, %d workers %.3fs",
				e.ID, e.SerialSeconds, record.Workers, e.ParallelSeconds)
			if e.Speedup != nil {
				line += fmt.Sprintf(" (%.2fx)", *e.Speedup)
			}
			if e.WarmSeconds != nil {
				line += fmt.Sprintf(", warm %.3fs (%.2fx vs cold)", *e.WarmSeconds, *e.WarmSpeedup)
			}
			fmt.Println(line)
		}
		fmt.Printf("perf record written to %s\n", *jsonPath)
	}
	if failed {
		return 1
	}
	return 0
}
