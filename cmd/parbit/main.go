// Command parbit is the PARBIT baseline (Horta & Lockwood): it extracts a
// column-window partial bitstream from a complete bitstream, driven by an
// options file — the bitstream-transforming alternative to JPG's CAD-flow
// integration.
//
// Usage:
//
//	parbit -target full.bit -options window.opt -o partial.bit
//
// where window.opt contains e.g.:
//
//	target XCV50
//	col_start 5
//	col_end 12
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bitfile"
	"repro/internal/parbit"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "parbit:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		target  = flag.String("target", "", "complete target bitstream (required)")
		optPath = flag.String("options", "", "options file (required)")
		outPath = flag.String("o", "partial.bit", "output partial bitstream")
	)
	flag.Parse()
	if *target == "" || *optPath == "" {
		flag.Usage()
		return fmt.Errorf("-target and -options are required")
	}
	file, err := os.ReadFile(*target)
	if err != nil {
		return err
	}
	bs, _, err := bitfile.Unwrap(file)
	if err != nil {
		return err
	}
	optText, err := os.ReadFile(*optPath)
	if err != nil {
		return err
	}
	opts, err := parbit.ParseOptions(string(optText))
	if err != nil {
		return err
	}
	partial, err := parbit.Transform(bs, opts)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, partial, 0o644); err != nil {
		return err
	}
	fmt.Printf("extracted columns %d..%d of %s: %d bytes (%.1f%% of full) -> %s\n",
		opts.StartCol, opts.EndCol, opts.Part, len(partial),
		100*float64(len(partial))/float64(len(bs)), *outPath)
	return nil
}
