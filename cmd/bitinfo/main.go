// Command bitinfo inspects a bitstream: identifies the target part, decodes
// the packet structure, and (for full bitstreams) summarises configuration
// content per column.
//
// Usage:
//
//	bitinfo [-packets] [-columns] design.bit
//	bitinfo lint design.bit
//
// The lint subcommand runs the independent verifier (internal/bitlint) over
// the stream: it re-decodes the raw bytes, checks packet well-formedness and
// the CRC chain, differentially compares the reconstruction against the
// configuration-port VM, and prints every finding. Exit status is non-zero
// when any error-severity finding is present.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bitfile"
	"repro/internal/bitlint"
	"repro/internal/bitstream"
	"repro/internal/device"
	"repro/internal/frames"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bitinfo:", err)
		os.Exit(1)
	}
}

// lint is the `bitinfo lint` subcommand.
func lint(args []string) error {
	fs := flag.NewFlagSet("bitinfo lint", flag.ExitOnError)
	partName := fs.String("part", "", "pin the target part (default: infer from the FLR write)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: bitinfo lint [-part XCV50] design.bit")
	}
	file, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	bs, hdr, err := bitfile.Unwrap(file)
	if err != nil {
		return err
	}
	if hdr.Part != "" {
		fmt.Printf(".bit header: design %q, part %s\n", hdr.Design, hdr.Part)
	}
	var rep *bitlint.Report
	if *partName != "" {
		p, err := device.ByName(*partName)
		if err != nil {
			return err
		}
		rep, err = bitlint.VerifyFor(p, bs)
		if err != nil {
			return err
		}
	} else if rep, err = bitlint.Verify(bs); err != nil {
		return err
	}
	fmt.Print(rep.String())
	if errs := rep.Errors(); len(errs) > 0 {
		return fmt.Errorf("%d error finding(s)", len(errs))
	}
	return nil
}

func run() error {
	if len(os.Args) > 1 && os.Args[1] == "lint" {
		return lint(os.Args[2:])
	}
	var (
		packets = flag.Bool("packets", false, "dump the packet listing")
		columns = flag.Bool("columns", false, "summarise non-empty frames per column")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return fmt.Errorf("exactly one bitstream file expected")
	}
	file, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d bytes\n", flag.Arg(0), len(file))
	bs, hdr, err := bitfile.Unwrap(file)
	if err != nil {
		return err
	}
	if hdr.Part != "" {
		fmt.Printf(".bit header: design %q, part %s, built %s %s\n",
			hdr.Design, hdr.Part, hdr.Date, hdr.Time)
	}

	part, err := bitstream.InferPart(bs)
	if err != nil {
		return err
	}
	fmt.Printf("part: %s\n", part)

	mem := frames.New(part)
	stats, err := bitstream.Apply(mem, bs)
	if err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	kind := "partial"
	if stats.FramesWritten == part.TotalFrames() {
		kind = "complete"
	}
	fmt.Printf("type: %s (%d of %d frames written, %d packets, start-up=%v)\n",
		kind, stats.FramesWritten, part.TotalFrames(), stats.Packets, stats.Started)

	if *columns {
		nonZero := map[int]int{}
		for _, far := range mem.NonZeroFrames() {
			nonZero[far.Major()]++
		}
		fmt.Println("non-empty frames per block-0 major:")
		for maj := 0; maj < part.NumMajors(device.BlockCLB); maj++ {
			if n := nonZero[maj]; n > 0 {
				label := fmt.Sprintf("major %d", maj)
				if col, ok := part.CLBColOfMajor(maj); ok {
					label = fmt.Sprintf("CLB col %d", col+1)
				}
				fmt.Printf("  %-12s %d frames\n", label, n)
			}
		}
	}
	if *packets {
		dump, err := bitstream.Dump(bs)
		if err != nil {
			return err
		}
		fmt.Print(dump)
	}
	return nil
}
