// Command bitinfo inspects a bitstream: identifies the target part, decodes
// the packet structure, and (for full bitstreams) summarises configuration
// content per column.
//
// Usage:
//
//	bitinfo [-packets] [-columns] design.bit
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bitfile"
	"repro/internal/bitstream"
	"repro/internal/device"
	"repro/internal/frames"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bitinfo:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		packets = flag.Bool("packets", false, "dump the packet listing")
		columns = flag.Bool("columns", false, "summarise non-empty frames per column")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return fmt.Errorf("exactly one bitstream file expected")
	}
	file, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d bytes\n", flag.Arg(0), len(file))
	bs, hdr, err := bitfile.Unwrap(file)
	if err != nil {
		return err
	}
	if hdr.Part != "" {
		fmt.Printf(".bit header: design %q, part %s, built %s %s\n",
			hdr.Design, hdr.Part, hdr.Date, hdr.Time)
	}

	part, err := bitstream.InferPart(bs)
	if err != nil {
		return err
	}
	fmt.Printf("part: %s\n", part)

	mem := frames.New(part)
	stats, err := bitstream.Apply(mem, bs)
	if err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	kind := "partial"
	if stats.FramesWritten == part.TotalFrames() {
		kind = "complete"
	}
	fmt.Printf("type: %s (%d of %d frames written, %d packets, start-up=%v)\n",
		kind, stats.FramesWritten, part.TotalFrames(), stats.Packets, stats.Started)

	if *columns {
		nonZero := map[int]int{}
		for _, far := range mem.NonZeroFrames() {
			nonZero[far.Major()]++
		}
		fmt.Println("non-empty frames per block-0 major:")
		for maj := 0; maj < part.NumMajors(device.BlockCLB); maj++ {
			if n := nonZero[maj]; n > 0 {
				label := fmt.Sprintf("major %d", maj)
				if col, ok := part.CLBColOfMajor(maj); ok {
					label = fmt.Sprintf("CLB col %d", col+1)
				}
				fmt.Printf("  %-12s %d frames\n", label, n)
			}
		}
	}
	if *packets {
		dump, err := bitstream.Dump(bs)
		if err != nil {
			return err
		}
		fmt.Print(dump)
	}
	return nil
}
