package jpg

// Tests of the public facade: the API surface examples and downstream users
// see. Deep behaviour is tested in the internal packages; these tests pin
// the composition.

import (
	"context"
	"strings"
	"testing"
)

func TestPartsCatalog(t *testing.T) {
	parts := Parts()
	if len(parts) != 9 {
		t.Fatalf("family has %d parts, want 9", len(parts))
	}
	p, err := PartByName("XCV300")
	if err != nil || p.Rows != 32 {
		t.Fatalf("PartByName: %v", err)
	}
	if _, err := PartByName("XC4000"); err == nil {
		t.Fatal("unknown part accepted")
	}
}

func TestPublicEndToEnd(t *testing.T) {
	p, err := PartByName("XCV50")
	if err != nil {
		t.Fatal(err)
	}
	base, err := BuildBase(context.Background(), p, []Instance{
		{Prefix: "u1/", Gen: Counter{Bits: 5}},
		{Prefix: "u2/", Gen: SBoxBank{N: 4, Seed: 2}},
	}, FlowOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	variant, err := BuildVariant(context.Background(), base, "u1/", LFSR{Bits: 5}, FlowOptions{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	proj, err := NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	m, err := proj.AddModule("v", variant.XDL, variant.UCF)
	if err != nil {
		t.Fatal(err)
	}
	board := NewBoard(p)
	if _, err := board.Download(base.Bitstream); err != nil {
		t.Fatal(err)
	}
	res, ds, err := proj.GenerateAndDownload(m, board, GenerateOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Bytes != len(res.Bitstream) || len(res.Bitstream) >= len(base.Bitstream) {
		t.Fatalf("partial result inconsistent: %d bytes vs full %d", len(res.Bitstream), len(base.Bitstream))
	}

	// Bitstream utilities.
	if part, err := InferPart(base.Bitstream); err != nil || part != p {
		t.Fatalf("InferPart: %v", err)
	}
	dump, err := DumpBitstream(res.Bitstream)
	if err != nil || !strings.Contains(dump, "WCFG") {
		t.Fatalf("DumpBitstream: %v", err)
	}
	mem := NewMemory(p)
	if _, err := Apply(mem, base.Bitstream); err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(mem, res.Bitstream); err != nil {
		t.Fatal(err)
	}
	if !mem.Equal(board.Readback()) {
		t.Fatal("offline Apply disagrees with board state")
	}

	// Extraction and simulation.
	ex, err := ExtractDesign(mem)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := SimulateExtracted(ex)
	if err != nil {
		t.Fatal(err)
	}
	sim.Step()
	if _, err := sim.Output(base.Pads["u1_out0"]); err != nil {
		t.Fatal(err)
	}
}

func TestPublicBaselines(t *testing.T) {
	p, err := PartByName("XCV50")
	if err != nil {
		t.Fatal(err)
	}
	full, err := BuildFull(context.Background(), p, []Instance{{Prefix: "u1/", Gen: Counter{Bits: 4}}}, FlowOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	partial, err := ParbitTransform(full.Bitstream, ParbitOptions{Part: "XCV50", StartCol: 1, EndCol: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(partial) >= len(full.Bitstream) {
		t.Fatal("parbit window not smaller than full")
	}
	full2, err := BuildFull(context.Background(), p, []Instance{{Prefix: "u1/", Gen: Counter{Bits: 4}}}, FlowOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	core, err := JBitsDiffExtract(full.Bitstream, full2.Bitstream)
	if err != nil {
		t.Fatal(err)
	}
	if len(core.FARs) == 0 {
		t.Fatal("jbitsdiff found no differences between different placements")
	}
}

func TestPartialForFARs(t *testing.T) {
	p, err := PartByName("XCV50")
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemory(p)
	rg := Region{R1: 0, C1: 0, R2: p.Rows - 1, C2: 2}
	bs, err := WritePartialForFARs(mem, rg.FARs(p))
	if err != nil {
		t.Fatal(err)
	}
	full := WriteFull(mem)
	if len(bs) >= len(full) {
		t.Fatal("partial not smaller than full")
	}
}

func TestPublicTimingAndGuides(t *testing.T) {
	p, err := PartByName("XCV50")
	if err != nil {
		t.Fatal(err)
	}
	full, err := BuildFull(context.Background(), p, []Instance{{Prefix: "u1/", Gen: Counter{Bits: 5}}}, FlowOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ta, err := AnalyzeTiming(full)
	if err != nil {
		t.Fatal(err)
	}
	if ta.FMaxMHz <= 0 || ta.CriticalNs <= 0 {
		t.Fatalf("timing analysis empty: %+v", ta)
	}
	if !strings.Contains(ta.Report(), "fmax") {
		t.Fatal("timing report incomplete")
	}
}

func TestPublicRuntimeRouterAndBRAM(t *testing.T) {
	p, err := PartByName("XCV50")
	if err != nil {
		t.Fatal(err)
	}
	base, err := BuildBase(context.Background(), p, []Instance{{Prefix: "u1/", Gen: Counter{Bits: 4}}}, FlowOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	proj, err := NewProject(base.Bitstream)
	if err != nil {
		t.Fatal(err)
	}

	// BRAM update through the public API.
	res, err := proj.UpdateBRAM(GenerateOptions{WriteBack: true}, func(jb *JBits) error {
		return jb.SetBRAMWord(0, 1, 42, 0xCAFE)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bitstream) == 0 {
		t.Fatal("empty BRAM partial")
	}
	jb := NewJBits(proj.Base)
	if v, err := jb.GetBRAMWord(0, 1, 42); err != nil || v != 0xCAFE {
		t.Fatalf("BRAM write-back lost: %04x %v", v, err)
	}

	// Run-time router through the public API.
	router, err := NewRuntimeRouter(proj.Base)
	if err != nil {
		t.Fatal(err)
	}
	src, err := CellOutputNode(&base.Artifacts, "u1/q0")
	if err != nil {
		t.Fatal(err)
	}
	dst, err := PadOutputNode(p, "P_R5")
	if err != nil {
		t.Fatal(err)
	}
	path, err := router.Connect(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) == 0 {
		t.Fatal("empty run-time route")
	}
	if err := EnableOutputPad(proj.Base, "P_R5"); err != nil {
		t.Fatal(err)
	}
	if _, err := CellOutputNode(&base.Artifacts, "ghost"); err == nil {
		t.Fatal("unknown cell accepted")
	}
	if _, err := PadOutputNode(p, "P_Z1"); err == nil {
		t.Fatal("bad pad accepted")
	}
}

func TestPublicBitfile(t *testing.T) {
	raw := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xAA, 0x99, 0x55, 0x66}
	wrapped := WrapBitfile(BitfileHeader{Design: "d.ncd", Part: "XCV50"}, raw)
	out, h, err := UnwrapBitfile(wrapped)
	if err != nil || h.Part != "XCV50" || len(out) != len(raw) {
		t.Fatalf("bitfile round trip: %+v %v", h, err)
	}
	out, h, err = UnwrapBitfile(raw)
	if err != nil || h.Part != "" || len(out) != len(raw) {
		t.Fatal("raw passthrough broken")
	}
}
